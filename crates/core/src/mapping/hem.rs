//! Multi-pass parallel Heavy Edge Matching (the paper's Algorithm 10).
//!
//! Modeled after Algorithm 4, with the key distinction that a vertex seeks
//! its heaviest **unmatched** neighbor, so the heavy array is recomputed
//! for the unassigned vertices after each pass. Matching means aggregates
//! never exceed two vertices — the ≤2 coarsening-ratio bound the paper
//! contrasts with HEC. Vertices with no unmatched neighbor left become
//! singletons, which is exactly the *stalling* phenomenon two-hop matching
//! (see [`super::twohop`]) exists to mitigate.

use super::util::{heavy_neighbor_where, relabel_in};
use super::workspace::MapWorkspace;
use super::{MapStats, Mapping, UNMAPPED};
use mlcg_graph::{Csr, VId};
use mlcg_par::atomic::as_atomic_u32;
use mlcg_par::filter::filter_indices_in;
use mlcg_par::perm::random_permutation_in;
use mlcg_par::{parallel_for, profile, ExecPolicy};
use std::sync::atomic::Ordering;

const FREE: u32 = u32::MAX;

/// Parallel HEM. Returns raw (pre-relabel) matching in `M` plus stats.
/// Unmatched vertices become singleton aggregates.
pub fn hem(policy: &ExecPolicy, g: &Csr, seed: u64) -> (Mapping, MapStats) {
    hem_in(policy, g, seed, &mut MapWorkspace::new())
}

/// [`hem`] through a level-reused workspace.
pub fn hem_in(
    policy: &ExecPolicy,
    g: &Csr,
    seed: u64,
    ws: &mut MapWorkspace,
) -> (Mapping, MapStats) {
    let (raw, stats) = hem_raw_in(policy, g, seed, ws);
    (relabel_in(policy, finalize_singletons(raw), ws), stats)
}

/// The matching phase shared with two-hop coarsening: returns `M` where
/// matched vertices carry the *smaller endpoint's id* as a raw label and
/// unmatched vertices remain [`UNMAPPED`].
pub fn hem_raw(policy: &ExecPolicy, g: &Csr, seed: u64) -> (Vec<u32>, MapStats) {
    hem_raw_in(policy, g, seed, &mut MapWorkspace::new())
}

/// [`hem_raw`] through a level-reused workspace.
pub fn hem_raw_in(
    policy: &ExecPolicy,
    g: &Csr,
    seed: u64,
    ws: &mut MapWorkspace,
) -> (Vec<u32>, MapStats) {
    let n = g.n();
    let mut m = vec![UNMAPPED; n];
    if n <= 1 {
        return (m, MapStats::default());
    }
    let mut stats = MapStats::default();
    random_permutation_in(policy, n, seed, &mut ws.perm_keys, &mut ws.queue);
    MapWorkspace::filled(&mut ws.own, n, FREE);
    // Each pass recomputes heavy-unmatched neighbors, then claims pairs.
    // Passes stop when no additional match lands (the stall point).
    loop {
        let before_unmatched = ws.queue.len();
        MapWorkspace::filled(&mut ws.heavy, n, UNMAPPED);
        {
            let _k = profile::kernel("heavy_scan");
            let base = ws.heavy.as_mut_ptr() as usize;
            let m_ref = &m;
            let q_ref = &ws.queue;
            parallel_for(policy, q_ref.len(), move |i| {
                let u = q_ref[i];
                let best = heavy_neighbor_where(g, u as VId, |v| m_ref[v as usize] == UNMAPPED);
                if let Some(v) = best {
                    // SAFETY: disjoint writes per queue entry.
                    unsafe {
                        (base as *mut u32).add(u as usize).write(v);
                    }
                }
            });
        }
        {
            let _k = profile::kernel("hem_match");
            let m_at = as_atomic_u32(&mut m);
            let c_at = as_atomic_u32(&mut ws.own);
            let (h_ref, q_ref) = (&ws.heavy, &ws.queue);
            parallel_for(policy, q_ref.len(), move |i| {
                let u = q_ref[i];
                let v = h_ref[u as usize];
                if v == UNMAPPED {
                    return; // no unmatched neighbor; may become a singleton
                }
                // Mutual-preference id check prevents symmetric deadlock.
                if h_ref[v as usize] == u && v < u {
                    return;
                }
                if c_at[u as usize]
                    .compare_exchange(FREE, v, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    return;
                }
                if c_at[v as usize]
                    .compare_exchange(FREE, u, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    let label = u.min(v);
                    m_at[u as usize].store(label, Ordering::Release);
                    m_at[v as usize].store(label, Ordering::Release);
                } else {
                    // v got claimed; unlike HEC there is nothing to inherit
                    // (matching only) — release and retry with a fresh H.
                    c_at[u as usize].store(FREE, Ordering::Release);
                }
            });
        }
        filter_indices_in(
            policy,
            &ws.queue,
            |u| m[u as usize] == UNMAPPED,
            &mut ws.fcounts,
            &mut ws.qscratch,
        );
        std::mem::swap(&mut ws.queue, &mut ws.qscratch);
        stats.passes += 1;
        stats.record_resolved(before_unmatched - ws.queue.len());
        if ws.queue.is_empty() || before_unmatched == ws.queue.len() {
            break;
        }
        // Reset ownership of the still-unmatched for the next pass.
        for &u in &ws.queue {
            ws.own[u as usize] = FREE;
        }
    }
    (m, stats)
}

/// Give every still-unmatched vertex its own singleton raw label.
pub fn finalize_singletons(mut m: Vec<u32>) -> Vec<u32> {
    for (u, slot) in m.iter_mut().enumerate() {
        if *slot == UNMAPPED {
            *slot = u as u32;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{testkit, MapMethod};
    use mlcg_graph::builder::from_edges_weighted;
    use mlcg_graph::generators as gen;

    #[test]
    fn battery() {
        testkit::run_battery(MapMethod::Hem);
    }

    #[test]
    fn hem_is_a_matching() {
        // Aggregates have size <= 2 — the defining matching property.
        for (name, g) in testkit::battery() {
            for policy in ExecPolicy::all_test_policies() {
                let (m, _) = hem(&policy, &g, 17);
                testkit::check_mapping(name, &g, &m);
                let max = m.aggregate_sizes().into_iter().max().unwrap_or(0);
                assert!(
                    max <= 2,
                    "{name}: aggregate of size {max} breaks matching bound"
                );
            }
        }
    }

    #[test]
    fn matched_pairs_are_adjacent() {
        let g = gen::grid2d(15, 15);
        let (m, _) = hem(&ExecPolicy::serial(), &g, 23);
        let mut members: Vec<Vec<u32>> = vec![vec![]; m.n_coarse];
        for (u, &a) in m.map.iter().enumerate() {
            members[a as usize].push(u as u32);
        }
        for pair in members.iter().filter(|p| p.len() == 2) {
            assert!(
                g.find_edge(pair[0], pair[1]).is_some(),
                "matched pair {pair:?} not adjacent"
            );
        }
    }

    #[test]
    fn star_stalls_with_singletons() {
        // HEM on a star: the hub matches one leaf; all other leaves stall
        // as singletons, so the coarsening ratio approaches 1.
        let g = gen::star(40);
        let (m, _) = hem(&ExecPolicy::serial(), &g, 3);
        assert_eq!(m.n_coarse, 39, "one pair plus 38 singletons");
        assert!(m.coarsening_ratio() < 1.1);
    }

    #[test]
    fn heavy_edge_is_preferred() {
        // 1 -(1)- 0 -(9)- 2: the matching must take (0,2).
        let g = from_edges_weighted(3, &[(0, 1, 1), (0, 2, 9)]);
        let (m, _) = hem(&ExecPolicy::serial(), &g, 7);
        assert_eq!(m.map[0], m.map[2]);
        assert_ne!(m.map[0], m.map[1]);
    }

    #[test]
    fn path_matches_nearly_perfectly() {
        let g = gen::path(100);
        let (m, _) = hem(&ExecPolicy::serial(), &g, 5);
        // A path has a perfect or near-perfect matching; allow some slack
        // from the randomized order.
        assert!(
            m.coarsening_ratio() > 1.5,
            "path matching too sparse: ratio {}",
            m.coarsening_ratio()
        );
    }

    #[test]
    fn hem_raw_labels_are_min_endpoints() {
        let g = gen::cycle(10);
        let (raw, _) = hem_raw(&ExecPolicy::serial(), &g, 1);
        for (u, &l) in raw.iter().enumerate() {
            if l != UNMAPPED {
                assert!(l as usize <= u || raw[l as usize] == l);
            }
        }
    }
}

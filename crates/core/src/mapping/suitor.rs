//! Suitor weighted matching (Manne & Halappanavar) as a coarsening mapper.
//!
//! The paper lists comparing against "approximation algorithms for
//! weighted maximal matching such as Suitor" as future work; this module
//! implements it. Each vertex proposes to its heaviest neighbor whose
//! current suitor offer it can beat, dislodging weaker suitors, until no
//! proposals change — yielding the same matching as the sequential greedy
//! algorithm (a ½-approximation of maximum weight), but discovered in
//! parallel-friendly local steps.
//!
//! The implementation below runs the classic dislodge loop with a
//! sequential work stack; proposal keys are `(weight, seeded hash)` so
//! ties on unweighted graphs resolve randomly (deterministic per seed).
//! Matched pairs become coarse vertices; leftovers become singletons
//! (like HEM).

use super::hem::finalize_singletons;
use super::util::{relabel, relabel_in};
use super::workspace::MapWorkspace;
use super::{MapStats, Mapping, UNMAPPED};
use mlcg_graph::{Csr, VId};
use mlcg_par::perm::{random_permutation, random_permutation_in};
use mlcg_par::rng::hash_index;
use mlcg_par::ExecPolicy;

/// Seeded symmetric *edge* priority. Suitor's correctness (the suitor
/// relation converging to the symmetric greedy-matching fixpoint) needs a
/// total order on edges: per-endpoint tie-breaks let proposal 3-cycles
/// form on equal weights, leaving everyone unmatched. Hashing the
/// unordered endpoint pair gives each edge one global rank, randomized
/// per seed so unweighted graphs still match well.
#[inline]
fn edge_prio(seed: u64, u: u32, v: u32) -> u64 {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    hash_index(seed, ((a as u64) << 32) | b as u64)
}

/// Suitor-based matching coarsening.
pub fn suitor(policy: &ExecPolicy, g: &Csr, seed: u64) -> (Mapping, MapStats) {
    suitor_in(policy, g, seed, &mut MapWorkspace::new())
}

/// [`suitor`] through a level-reused workspace: the suitor array lives in
/// `ws.own`, the (weight, priority) offer keys are split across the two
/// u64 scratch arrays, and the permutation doubles as the work stack.
pub fn suitor_in(
    policy: &ExecPolicy,
    g: &Csr,
    seed: u64,
    ws: &mut MapWorkspace,
) -> (Mapping, MapStats) {
    let n = g.n();
    if n <= 1 {
        return (
            Mapping {
                map: vec![0; n.min(1)],
                n_coarse: n.min(1),
            },
            MapStats::default(),
        );
    }
    // suitor_of[v] = current best proposer of v; (t1[v], t2[v]) = its
    // (weight, priority) offer key, compared lexicographically.
    MapWorkspace::filled(&mut ws.own, n, UNMAPPED);
    ws.t1.clear();
    ws.t1.resize(n, 0);
    ws.t2.clear();
    ws.t2.resize(n, 0);
    let (suitor_of, offer_w, offer_p) = (&mut ws.own, &mut ws.t1, &mut ws.t2);

    // The random visit order is consumed stack-wise, so generate it
    // straight into the queue buffer and pop in place.
    random_permutation_in(policy, n, seed, &mut ws.perm_keys, &mut ws.queue);
    let stack = &mut ws.queue;
    let mut steps = 0usize;
    while let Some(u) = stack.pop() {
        steps += 1;
        assert!(
            steps <= 4 * n * (g.max_degree() + 2),
            "suitor dislodge loop exceeded its theoretical bound"
        );
        // u proposes along its best-ranked incident edge that can still
        // dislodge the target's current offer.
        let mut best: Option<(u64, u64, u32)> = None;
        for (v, w) in g.edges(u as VId) {
            let key = (w, edge_prio(seed, u, v));
            if key > (offer_w[v as usize], offer_p[v as usize]) {
                let cand = (key.0, key.1, v);
                match best {
                    Some(b) if b >= cand => {}
                    _ => best = Some(cand),
                }
            }
        }
        if let Some((w, ep, v)) = best {
            let dislodged = suitor_of[v as usize];
            suitor_of[v as usize] = u;
            offer_w[v as usize] = w;
            offer_p[v as usize] = ep;
            if dislodged != UNMAPPED {
                stack.push(dislodged); // must propose elsewhere
            }
        }
    }

    // Mutual suitors form the matching.
    let mut m = vec![UNMAPPED; n];
    for v in 0..n as u32 {
        let u = ws.own[v as usize];
        if u != UNMAPPED && ws.own[u as usize] == v && m[v as usize] == UNMAPPED {
            let label = u.min(v);
            m[u as usize] = label;
            m[v as usize] = label;
        }
    }
    let mapping = relabel_in(policy, finalize_singletons(m), ws);
    (
        mapping,
        MapStats {
            passes: 1,
            resolved_per_pass: vec![n],
            resolved_overflow: 0,
        },
    )
}

/// b-Suitor approximate weighted *b-matching* coarsening (Khan et al.) —
/// the paper's second listed future-work comparison.
///
/// Every vertex may keep up to `b` suitors and make up to `b` proposals;
/// a proposal must beat the target's current *worst* retained offer.
/// Mutual proposals become b-matching edges; contracting them (connected
/// components of the matched edge set) yields the coarse mapping, so
/// aggregates can be chains/cycles of up to `b`-degree vertices rather
/// than pairs.
pub fn b_suitor(policy: &ExecPolicy, g: &Csr, b: usize, seed: u64) -> (Mapping, MapStats) {
    assert!(b >= 1, "b must be positive");
    let n = g.n();
    if n <= 1 {
        return (
            Mapping {
                map: vec![0; n.min(1)],
                n_coarse: n.min(1),
            },
            MapStats::default(),
        );
    }
    // offers[v]: up to b retained (weight, priority, proposer) triples,
    // ascending, so offers[v][0] is the weakest retained offer. Priorities
    // are hashed (see `prio`) so unweighted graphs still pair up.
    let mut offers: Vec<Vec<(u64, u64, u32)>> = vec![Vec::new(); n];
    let order = random_permutation(policy, n, seed);
    // Each stack entry is a vertex that still owes proposals.
    let mut stack: Vec<u32> = order.to_vec();
    let mut proposals: Vec<Vec<(u64, u32)>> = vec![Vec::new(); n]; // (w, target)
    let mut steps = 0usize;
    while let Some(u) = stack.pop() {
        steps += 1;
        assert!(
            steps <= 2 * n * (b + 1) * (g.max_degree() + 2),
            "b-suitor dislodge loop exceeded its bound"
        );
        while proposals[u as usize].len() < b {
            // Best-ranked incident edge u can still win and has not
            // already proposed along.
            let mut best: Option<(u64, u64, u32)> = None;
            for (v, w) in g.edges(u as VId) {
                if proposals[u as usize].iter().any(|&(_, t)| t == v) {
                    continue;
                }
                let ep = edge_prio(seed, u, v);
                let beats = offers[v as usize].len() < b
                    || (w, ep) > (offers[v as usize][0].0, offers[v as usize][0].1);
                if beats {
                    let cand = (w, ep, v);
                    match best {
                        Some(bk) if bk >= cand => {}
                        _ => best = Some(cand),
                    }
                }
            }
            let Some((w, ep, v)) = best else { break };
            proposals[u as usize].push((w, v));
            let slot = &mut offers[v as usize];
            slot.push((w, ep, u));
            slot.sort_unstable();
            if slot.len() > b {
                let (_, _, dislodged) = slot.remove(0);
                // The dislodged proposer must retract and re-propose.
                proposals[dislodged as usize].retain(|&(_, t)| t != v);
                stack.push(dislodged);
            }
        }
    }
    // An edge is matched when each endpoint retains the other's offer;
    // contract the matched components.
    let mut dsu = mlcg_graph::cc::Dsu::new(n);
    for v in 0..n as u32 {
        for &(_, _, u) in &offers[v as usize] {
            if offers[u as usize].iter().any(|&(_, _, s)| s == v) {
                dsu.union(u, v);
            }
        }
    }
    let mut raw = vec![super::UNMAPPED; n];
    for u in 0..n as u32 {
        raw[u as usize] = dsu.find(u);
    }
    let mapping = relabel(policy, raw);
    (
        mapping,
        MapStats {
            passes: 1,
            resolved_per_pass: vec![n],
            resolved_overflow: 0,
        },
    )
}

/// Total weight of the matching encoded in a (pair-sized) mapping.
pub fn matching_weight(g: &Csr, mapping: &Mapping) -> u64 {
    let mut members: Vec<Vec<u32>> = vec![vec![]; mapping.n_coarse];
    for (u, &a) in mapping.map.iter().enumerate() {
        members[a as usize].push(u as u32);
    }
    members
        .iter()
        .filter(|p| p.len() == 2)
        .map(|p| {
            g.find_edge(p[0], p[1])
                .expect("matched pair must be adjacent")
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::testkit;
    use mlcg_graph::builder::from_edges_weighted;
    use mlcg_graph::generators as gen;

    #[test]
    fn battery() {
        for policy in ExecPolicy::all_test_policies() {
            for (name, g) in testkit::battery() {
                let (m, _) = suitor(&policy, &g, 42);
                testkit::check_mapping(name, &g, &m);
                assert!(
                    m.aggregate_sizes().into_iter().max().unwrap_or(0) <= 2,
                    "{name}: suitor must produce a matching"
                );
            }
        }
    }

    #[test]
    fn matches_greedy_on_weighted_path() {
        // Path with weights 1, 9, 1: greedy takes the middle edge only.
        let g = from_edges_weighted(4, &[(0, 1, 1), (1, 2, 9), (2, 3, 1)]);
        let (m, _) = suitor(&ExecPolicy::serial(), &g, 5);
        assert_eq!(m.map[1], m.map[2]);
        assert_ne!(m.map[0], m.map[1]);
        assert_ne!(m.map[3], m.map[2]);
        assert_eq!(matching_weight(&g, &m), 9);
    }

    #[test]
    fn half_approximation_bound_on_even_path() {
        // Path of 2k vertices with unit weights: max matching = k.
        let g = gen::path(20);
        let (m, _) = suitor(&ExecPolicy::serial(), &g, 7);
        let w = matching_weight(&g, &m);
        assert!(w * 2 >= 10, "suitor weight {w} below the 1/2-approx bound");
    }

    #[test]
    fn beats_or_ties_hem_weight_on_random_weighted_graphs() {
        // Suitor equals the greedy matching, which dominates random-order
        // HEM in expectation; require it to be at least comparable.
        let mut rng = mlcg_par::rng::Xoshiro256pp::new(3);
        let n = 200usize;
        let mut edges = Vec::new();
        for v in 1..n as u32 {
            edges.push((rng.next_below(v as u64) as u32, v, 1 + rng.next_below(100)));
        }
        for _ in 0..400 {
            let a = rng.next_below(n as u64) as u32;
            let b = rng.next_below(n as u64) as u32;
            if a != b {
                edges.push((a, b, 1 + rng.next_below(100)));
            }
        }
        let g = mlcg_graph::cc::largest_component(&from_edges_weighted(n, &edges)).0;
        let p = ExecPolicy::serial();
        let (ms, _) = suitor(&p, &g, 1);
        let (mh, _) = crate::mapping::hem::hem(&p, &g, 1);
        let (ws, wh) = (matching_weight(&g, &ms), matching_weight(&g, &mh));
        assert!(
            ws as f64 >= 0.9 * wh as f64,
            "suitor weight {ws} unexpectedly below HEM weight {wh}"
        );
    }

    #[test]
    fn b_suitor_matches_suitor_for_b_one() {
        for (name, g) in testkit::battery() {
            let p = ExecPolicy::serial();
            let (m1, _) = suitor(&p, &g, 11);
            let (mb, _) = b_suitor(&p, &g, 1, 11);
            // The matchings coincide (same greedy fixpoint), so the
            // aggregate structure must be identical.
            assert_eq!(m1.n_coarse, mb.n_coarse, "{name}");
            let (mut s1, mut sb) = (m1.aggregate_sizes(), mb.aggregate_sizes());
            s1.sort_unstable();
            sb.sort_unstable();
            assert_eq!(s1, sb, "{name}: size multisets differ");
        }
    }

    #[test]
    fn b_two_aggregates_are_connected_and_low_degree() {
        let g = gen::grid2d(12, 12);
        let (m, _) = b_suitor(&ExecPolicy::serial(), &g, 2, 5);
        crate::mapping::testkit::check_mapping("grid-b2", &g, &m);
        crate::mapping::testkit::check_aggregates_connected(&g, &m);
        // 2-matching components are paths/cycles: ratio in (1, 3+] but the
        // coarse count must be well below HEM's (more merges allowed).
        let (mh, _) = crate::mapping::hem::hem(&ExecPolicy::serial(), &g, 5);
        assert!(
            m.n_coarse <= mh.n_coarse,
            "b=2 should merge at least as much"
        );
    }

    #[test]
    fn b_suitor_increases_matched_weight_with_b() {
        let mut rng = mlcg_par::rng::Xoshiro256pp::new(9);
        let n = 150usize;
        let mut edges = Vec::new();
        for v in 1..n as u32 {
            edges.push((rng.next_below(v as u64) as u32, v, 1 + rng.next_below(50)));
        }
        for _ in 0..300 {
            let a = rng.next_below(n as u64) as u32;
            let b = rng.next_below(n as u64) as u32;
            if a != b {
                edges.push((a, b, 1 + rng.next_below(50)));
            }
        }
        let g = mlcg_graph::cc::largest_component(&from_edges_weighted(n, &edges)).0;
        let p = ExecPolicy::serial();
        // More matching slots -> more intra-aggregate weight contracted.
        let intra =
            |m: &crate::mapping::Mapping| crate::construct::intra_aggregate_weight(&p, &g, m);
        let (m1, _) = b_suitor(&p, &g, 1, 3);
        let (m2, _) = b_suitor(&p, &g, 2, 3);
        assert!(
            intra(&m2) >= intra(&m1),
            "b=2 contracted weight {} below b=1 {}",
            intra(&m2),
            intra(&m1)
        );
    }

    #[test]
    fn matching_is_maximal() {
        let g = gen::grid2d(10, 10);
        let (m, _) = suitor(&ExecPolicy::serial(), &g, 9);
        let sizes = m.aggregate_sizes();
        for u in 0..g.n() as u32 {
            for &v in g.neighbors(u) {
                let (au, av) = (m.map[u as usize], m.map[v as usize]);
                assert!(
                    !(au != av && sizes[au as usize] == 1 && sizes[av as usize] == 1),
                    "adjacent singletons {u},{v} violate maximality"
                );
            }
        }
    }
}

//! Heavy-edge classification for the Fig. 2 reproduction.
//!
//! Running sequential HEC labels each heavy edge `⟨u, H[u]⟩` as a *create*
//! edge (a new coarse vertex is born), an *inherit* edge (`u` joins the
//! aggregate of its already-mapped heavy neighbor) or a *skip* edge (`u`
//! was already mapped when visited). The paper's Fig. 2 (left) shows this
//! labeling; Fig. 2 (right) shows the heavy-neighbor digraph — a
//! pseudoforest whose non-zero in-degree vertices become HEC3's roots.

use super::util::heavy_neighbors;
use super::UNMAPPED;
use mlcg_graph::Csr;
use mlcg_par::perm::random_permutation;
use mlcg_par::ExecPolicy;

/// Classification of one heavy edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeClass {
    /// Both endpoints unmapped at visit time: a coarse vertex is created.
    Create,
    /// The heavy neighbor was mapped: the vertex inherits its label.
    Inherit,
    /// The vertex was already mapped: nothing happens.
    Skip,
}

/// Per-vertex heavy edge with its class, in visit order.
#[derive(Clone, Debug)]
pub struct ClassifiedEdge {
    /// The visited vertex.
    pub u: u32,
    /// Its heavy neighbor `H[u]`.
    pub v: u32,
    /// What the sequential algorithm did with this edge.
    pub class: EdgeClass,
}

/// Replay sequential HEC and record each heavy edge's class; also returns
/// the heavy-neighbor array (the Fig. 2-right digraph).
///
/// The replay itself is inherently sequential, but the heavy-neighbor scan
/// and the visit permutation run under the caller's `policy` — both are
/// deterministic across policies, so the classification is too (asserted
/// by `identical_across_policies`).
pub fn classify_heavy_edges(
    policy: &ExecPolicy,
    g: &Csr,
    seed: u64,
) -> (Vec<ClassifiedEdge>, Vec<u32>) {
    let n = g.n();
    let h = heavy_neighbors(policy, g);
    let p = random_permutation(policy, n, seed);
    let mut m = vec![UNMAPPED; n];
    let mut next = 0u32;
    let mut out = Vec::with_capacity(n);
    for &u in &p {
        let v = h[u as usize];
        let class = if m[u as usize] != UNMAPPED {
            EdgeClass::Skip
        } else if m[v as usize] != UNMAPPED {
            m[u as usize] = m[v as usize];
            EdgeClass::Inherit
        } else {
            m[v as usize] = next;
            m[u as usize] = next;
            next += 1;
            EdgeClass::Create
        };
        out.push(ClassifiedEdge { u, v, class });
    }
    (out, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcg_graph::demo::fig1_graph;
    use mlcg_graph::generators as gen;

    #[test]
    fn classes_cover_all_vertices() {
        let g = fig1_graph();
        let (edges, h) = classify_heavy_edges(&ExecPolicy::serial(), &g, 42);
        assert_eq!(edges.len(), g.n());
        assert_eq!(h.len(), g.n());
        // Every vertex appears exactly once as `u`.
        let mut seen = vec![false; g.n()];
        for e in &edges {
            assert!(!seen[e.u as usize]);
            seen[e.u as usize] = true;
            assert_eq!(e.v, h[e.u as usize]);
        }
    }

    #[test]
    fn first_edge_is_create_and_counts_are_consistent() {
        let g = fig1_graph();
        let (edges, _) = classify_heavy_edges(&ExecPolicy::serial(), &g, 7);
        assert_eq!(
            edges[0].class,
            EdgeClass::Create,
            "first visit always creates"
        );
        let creates = edges
            .iter()
            .filter(|e| e.class == EdgeClass::Create)
            .count();
        let skips = edges.iter().filter(|e| e.class == EdgeClass::Skip).count();
        let inherits = edges
            .iter()
            .filter(|e| e.class == EdgeClass::Inherit)
            .count();
        assert_eq!(creates + skips + inherits, g.n());
        // Every create maps two vertices; every inherit maps one; skips map
        // none. Total mapped = n.
        assert_eq!(2 * creates + inherits, g.n());
    }

    #[test]
    fn heavy_digraph_is_a_pseudoforest() {
        // Out-degree exactly one, and (our tie-break) no cycles longer
        // than 2.
        let g = fig1_graph();
        let (_, h) = classify_heavy_edges(&ExecPolicy::serial(), &g, 3);
        for u in 0..g.n() {
            let mut slow = u;
            let mut fast = h[u] as usize;
            let mut steps = 0;
            while slow != fast && steps < g.n() {
                slow = h[slow] as usize;
                fast = h[h[fast] as usize] as usize;
                steps += 1;
            }
            // Any cycle reachable from u must have length 2.
            let start = slow;
            let mut len = 1;
            let mut cur = h[start] as usize;
            while cur != start {
                cur = h[cur] as usize;
                len += 1;
                assert!(len <= g.n());
            }
            assert_eq!(len, 2, "cycle through {start} has length {len}");
        }
    }

    #[test]
    fn identical_across_policies() {
        // Both inputs to the replay (heavy neighbors, permutation) are
        // schedule-deterministic, so every policy yields the same
        // classification bit for bit.
        for g in [fig1_graph(), gen::grid2d(13, 11), gen::star(20)] {
            let (ref_edges, ref_h) = classify_heavy_edges(&ExecPolicy::serial(), &g, 42);
            for policy in ExecPolicy::all_test_policies() {
                let (edges, h) = classify_heavy_edges(&policy, &g, 42);
                assert_eq!(h, ref_h, "heavy array differs under {policy}");
                assert_eq!(edges.len(), ref_edges.len());
                for (a, b) in edges.iter().zip(&ref_edges) {
                    assert_eq!(
                        (a.u, a.v, a.class),
                        (b.u, b.v, b.class),
                        "classification differs under {policy}"
                    );
                }
            }
        }
    }

    #[test]
    fn skip_edges_appear_on_stars() {
        // On a star, after the hub pairs with a leaf, later leaves inherit;
        // the hub's own edge (if visited later) is a skip.
        let g = gen::star(10);
        let mut saw_skip_or_inherit = false;
        let (edges, _) = classify_heavy_edges(&ExecPolicy::serial(), &g, 5);
        for e in &edges[1..] {
            if matches!(e.class, EdgeClass::Skip | EdgeClass::Inherit) {
                saw_skip_or_inherit = true;
            }
        }
        assert!(saw_skip_or_inherit);
    }
}

//! The multilevel coarsening driver — the paper's Algorithm 1.
//!
//! Repeatedly map and construct until the coarse vertex count reaches the
//! cutoff (50 in all of the paper's experiments). Per the paper's protocol,
//! if one iteration drops the count from above the cutoff to below 10 the
//! coarsest graph is discarded; a level cap (mt-Metis-style 200) bounds
//! stalled coarseners such as plain HEM on star-heavy graphs.

use crate::audit::{audit_coarse_graph, audit_mapping};
use crate::construct::{construct_coarse_graph_traced_in, ConstructOptions, ConstructWorkspace};
use crate::mapping::{find_mapping_in, MapMethod, MapStats, MapWorkspace, Mapping};
use mlcg_graph::Csr;
use mlcg_par::{ExecPolicy, TraceCollector, TraceReport};

/// Options controlling a multilevel coarsening run.
#[derive(Clone, Debug)]
pub struct CoarsenOptions {
    /// Mapping algorithm.
    pub method: MapMethod,
    /// Construction strategy and tuning.
    pub construction: ConstructOptions,
    /// Stop once the coarse graph has at most this many vertices (paper: 50).
    pub cutoff: usize,
    /// Discard the coarsest graph if an iteration overshoots below this
    /// (paper: 10).
    pub min_accept: usize,
    /// Hard cap on levels (guards stalled coarsening; mt-Metis uses ~200).
    pub max_levels: usize,
    /// Seed for the randomized visit orders (level `i` uses `seed + i`).
    pub seed: u64,
    /// Trace sink for phase spans, per-level gauges, pipeline counters and
    /// opt-in invariant audits. The default reads `MLCG_TRACE` /
    /// `MLCG_VALIDATE` from the environment; when both are off this is the
    /// no-op collector with negligible overhead.
    pub trace: TraceCollector,
}

impl Default for CoarsenOptions {
    fn default() -> Self {
        CoarsenOptions {
            method: MapMethod::Hec,
            construction: ConstructOptions::default(),
            cutoff: 50,
            min_accept: 10,
            max_levels: 200,
            seed: 0x5eed,
            trace: TraceCollector::from_env(),
        }
    }
}

/// One coarsening level: the mapping from the previous graph and the
/// resulting coarse graph.
#[derive(Clone, Debug)]
pub struct Level {
    /// Fine-to-coarse mapping from the previous level's graph.
    pub mapping: Mapping,
    /// The coarse graph this level produced.
    pub graph: Csr,
    /// Mapping-phase statistics.
    pub map_stats: MapStats,
}

/// Per-run statistics matching the paper's Tables II–IV columns.
#[derive(Clone, Debug, Default)]
pub struct CoarsenStats {
    /// Seconds spent in the mapping phase, per level.
    pub map_seconds: Vec<f64>,
    /// Seconds spent in graph construction, per level.
    pub construct_seconds: Vec<f64>,
}

impl CoarsenStats {
    /// Total coarsening time `t_c`.
    pub fn total_seconds(&self) -> f64 {
        self.map_seconds.iter().sum::<f64>() + self.construct_seconds.iter().sum::<f64>()
    }

    /// Fraction of total time spent constructing (the `% GrCo` column).
    pub fn construction_fraction(&self) -> f64 {
        let t = self.total_seconds();
        if t == 0.0 {
            0.0
        } else {
            self.construct_seconds.iter().sum::<f64>() / t
        }
    }
}

/// A full coarsening hierarchy.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// The (preprocessed) input graph `G_0`.
    pub fine: Csr,
    /// Coarsening levels `G_1 .. G_l`, finest first.
    pub levels: Vec<Level>,
    /// Phase timings.
    pub stats: CoarsenStats,
    /// Trace snapshot from the run's collector: phase spans, per-level
    /// gauges, pipeline counters and audit outcomes. Empty when tracing
    /// was disabled.
    pub trace: TraceReport,
}

impl Hierarchy {
    /// Number of coarsening levels `l`.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The coarsest graph (the input graph if no level was produced).
    pub fn coarsest(&self) -> &Csr {
        self.levels.last().map(|l| &l.graph).unwrap_or(&self.fine)
    }

    /// Average per-level coarsening ratio `(n_0 / n_l)^(1/l)` (the paper's
    /// `cr`).
    pub fn avg_coarsening_ratio(&self) -> f64 {
        let l = self.num_levels();
        if l == 0 {
            return 1.0;
        }
        let n0 = self.fine.n() as f64;
        let nl = self.coarsest().n() as f64;
        (n0 / nl).powf(1.0 / l as f64)
    }

    /// Project per-vertex values on the coarsest graph back to the finest:
    /// `out[u] = values[M_l(...M_1(u))]`.
    pub fn project_to_fine<T: Copy>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(
            values.len(),
            self.coarsest().n(),
            "project: length mismatch"
        );
        let mut cur: Vec<T> = values.to_vec();
        for level in self.levels.iter().rev() {
            cur = level.mapping.map.iter().map(|&m| cur[m as usize]).collect();
        }
        cur
    }

    /// Project values one level: from level `i` (0 = finest coarse level)
    /// to the graph above it.
    pub fn interpolate_level<T: Copy>(&self, level: usize, values: &[T]) -> Vec<T> {
        let mapping = &self.levels[level].mapping;
        assert_eq!(values.len(), mapping.n_coarse);
        mapping.map.iter().map(|&m| values[m as usize]).collect()
    }

    /// Fine-side vertex ids (at the graph above `level`) whose aggregate
    /// is marked.
    ///
    /// A fine vertex can lie on a partition boundary only if its aggregate
    /// does (every cross-part fine edge joins two aggregates that share a
    /// cut coarse edge), so projecting the coarse boundary this way yields
    /// a superset of the fine boundary in `O(n)` — no edge scan — which is
    /// how boundary-driven FM refinement seeds its frontier during
    /// uncoarsening.
    pub fn project_frontier(&self, level: usize, coarse_marked: &[bool]) -> Vec<u32> {
        let mapping = &self.levels[level].mapping;
        assert_eq!(
            coarse_marked.len(),
            mapping.n_coarse,
            "project_frontier: mark length mismatch"
        );
        mapping
            .map
            .iter()
            .enumerate()
            .filter(|&(_, &m)| coarse_marked[m as usize])
            .map(|(u, _)| u as u32)
            .collect()
    }

    /// [`Hierarchy::project_frontier`] from a coarse vertex-id list
    /// instead of a mark array: builds the marks internally, so callers
    /// holding a boundary/frontier as ids (the refiners' native output)
    /// don't each re-materialize an `O(n_coarse)` bool vector.
    pub fn project_frontier_ids(&self, level: usize, coarse_ids: &[u32]) -> Vec<u32> {
        let mapping = &self.levels[level].mapping;
        let mut marked = vec![false; mapping.n_coarse];
        for &c in coarse_ids {
            marked[c as usize] = true;
        }
        self.project_frontier(level, &marked)
    }

    /// The graph *above* level `i` (the finer one it was built from).
    pub fn graph_above(&self, level: usize) -> &Csr {
        if level == 0 {
            &self.fine
        } else {
            &self.levels[level - 1].graph
        }
    }
}

/// Run Algorithm 1: build the full hierarchy.
///
/// ```
/// use mlcg_coarsen::{coarsen, CoarsenOptions};
/// use mlcg_par::ExecPolicy;
///
/// let g = mlcg_graph::generators::grid2d(16, 16);
/// let h = coarsen(&ExecPolicy::host(), &g, &CoarsenOptions::default());
/// assert!(h.coarsest().n() <= 50);
/// // Total vertex weight is conserved down the hierarchy.
/// assert_eq!(h.coarsest().total_vwgt(), g.n() as u64);
/// ```
pub fn coarsen(policy: &ExecPolicy, g: &Csr, opts: &CoarsenOptions) -> Hierarchy {
    let trace = &opts.trace;
    // Whole-hierarchy heap attribution: everything the build allocates
    // (mappings, coarse graphs, workspaces) lands in `mem/coarsen/*`.
    let mem = trace.heap_scope(|| "coarsen".to_string());
    let mut levels: Vec<Level> = Vec::new();
    let mut stats = CoarsenStats::default();
    let mut current = g.clone();
    // One construction workspace for the whole hierarchy: levels after the
    // first reuse the previous level's scratch capacity instead of paying
    // the full construction allocation envelope again.
    let mut cws = ConstructWorkspace::new();
    // Same deal for the mapping phase: one workspace, reused every level.
    let mut mws = MapWorkspace::new();
    let mut i = 0u64;
    while current.n() > opts.cutoff && levels.len() < opts.max_levels {
        let lvl = levels.len();
        let span = trace.timed_span(|| format!("mapping/{}/level{lvl}", opts.method.name()));
        let (mapping, map_stats) = find_mapping_in(
            policy,
            &current,
            opts.method,
            opts.seed.wrapping_add(i),
            &mut mws,
        );
        let t_map = span.finish();
        audit_mapping(trace, &format!("mapping/level{lvl}"), current.n(), &mapping);

        let span = trace
            .timed_span(|| format!("construct/{}/level{lvl}", opts.construction.method.name()));
        let coarse = construct_coarse_graph_traced_in(
            policy,
            &current,
            &mapping,
            &opts.construction,
            trace,
            &mut cws,
        );
        let t_con = span.finish();
        audit_coarse_graph(
            policy,
            trace,
            &format!("construct/level{lvl}"),
            &current,
            &mapping,
            &coarse,
        );

        if trace.is_enabled() {
            // The heavy-neighbor / matching phase scans every fine edge at
            // least once; conflicts re-matched are the vertices the
            // HEC-family pass loop resolved after its first pass.
            trace.counter_add("mapping/edges_scanned", current.adj().len() as u64);
            trace.counter_add("mapping/passes", map_stats.passes as u64);
            let first = map_stats.resolved_per_pass.first().copied().unwrap_or(0);
            let rematched = map_stats.resolved_total().saturating_sub(first);
            trace.counter_add("mapping/conflicts_rematched", rematched as u64);
            // Per-level series for the mapping phase: pass count and the
            // work-queue length entering pass 2 (0 for single-pass methods).
            let method = opts.method.name();
            trace.gauge(|| format!("map/{method}/passes"), map_stats.passes as f64);
            let queue_len = if map_stats.resolved_per_pass.is_empty() {
                0
            } else {
                current.n().saturating_sub(first)
            };
            trace.gauge(|| format!("map/{method}/queue_len"), queue_len as f64);
            record_level_gauges(trace, lvl, &current, &mapping, &coarse);
        }

        // Stall guard: no progress means the method cannot coarsen further.
        if mapping.n_coarse >= current.n() {
            break;
        }
        // The paper's discard rule: a >cutoff -> <min_accept overshoot is
        // rejected and coarsening stops with the previous graph.
        if coarse.n() < opts.min_accept && current.n() > opts.cutoff {
            break;
        }
        stats.map_seconds.push(t_map);
        stats.construct_seconds.push(t_con);
        current = coarse.clone();
        levels.push(Level {
            mapping,
            graph: coarse,
            map_stats,
        });
        i += 1;
    }
    // Close the heap scope before snapshotting so the report sees the
    // `mem/coarsen/*` gauges.
    drop(mem);
    Hierarchy {
        fine: g.clone(),
        levels,
        stats,
        trace: trace.report(),
    }
}

/// Per-level gauges: size, compression, matched fraction, degree extremes.
fn record_level_gauges(
    trace: &TraceCollector,
    lvl: usize,
    fine: &Csr,
    mapping: &Mapping,
    coarse: &Csr,
) {
    trace.gauge(|| format!("level/{lvl}/nv"), coarse.n() as f64);
    trace.gauge(|| format!("level/{lvl}/ne"), coarse.m() as f64);
    let compression = if coarse.n() > 0 {
        fine.n() as f64 / coarse.n() as f64
    } else {
        f64::INFINITY
    };
    trace.gauge(|| format!("level/{lvl}/compression"), compression);
    let merged: usize = mapping
        .aggregate_sizes()
        .into_iter()
        .filter(|&s| s >= 2)
        .sum();
    trace.gauge(
        || format!("level/{lvl}/matched_frac"),
        merged as f64 / fine.n().max(1) as f64,
    );
    trace.gauge(
        || format!("level/{lvl}/max_coarse_degree"),
        coarse.max_degree() as f64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::ConstructMethod;
    use mlcg_graph::generators as gen;
    use mlcg_graph::metrics::edge_cut;

    fn opts(method: MapMethod) -> CoarsenOptions {
        CoarsenOptions {
            method,
            ..Default::default()
        }
    }

    #[test]
    fn hec_reaches_cutoff_on_grid() {
        let g = gen::grid2d(40, 40);
        let h = coarsen(&ExecPolicy::serial(), &g, &opts(MapMethod::Hec));
        assert!(h.coarsest().n() <= 50, "coarsest n = {}", h.coarsest().n());
        assert!(h.num_levels() >= 2);
        for level in &h.levels {
            level.graph.validate().unwrap();
            level.mapping.validate().unwrap();
        }
        // Vertex weight is conserved along the whole hierarchy.
        assert_eq!(h.coarsest().total_vwgt(), g.n() as u64);
    }

    #[test]
    fn hem_needs_more_levels_than_hec() {
        let g = gen::grid2d(32, 32);
        let p = ExecPolicy::serial();
        let hec = coarsen(&p, &g, &opts(MapMethod::Hec));
        let hem = coarsen(&p, &g, &opts(MapMethod::Hem));
        assert!(
            hem.num_levels() >= hec.num_levels(),
            "HEM {} vs HEC {}",
            hem.num_levels(),
            hec.num_levels()
        );
        // Matching halves at best: cr <= 2 (+ tolerance for rounding).
        assert!(hem.avg_coarsening_ratio() <= 2.01);
        assert!(hec.avg_coarsening_ratio() > 1.5);
    }

    #[test]
    fn projection_round_trips_labels() {
        let g = gen::grid2d(20, 20);
        let h = coarsen(&ExecPolicy::serial(), &g, &opts(MapMethod::Hec));
        let nc = h.coarsest().n();
        let labels: Vec<u32> = (0..nc as u32).collect();
        let fine_labels = h.project_to_fine(&labels);
        assert_eq!(fine_labels.len(), g.n());
        // Every fine vertex lands on the label of its coarsest aggregate.
        let mut compound: Vec<u32> = (0..nc as u32).collect();
        for level in h.levels.iter().rev() {
            compound = level
                .mapping
                .map
                .iter()
                .map(|&m| compound[m as usize])
                .collect();
        }
        assert_eq!(fine_labels, compound);
    }

    #[test]
    fn projected_cut_equals_coarse_cut() {
        // A bisection of the coarsest graph, projected to the fine graph,
        // must cut exactly the weight the coarse cut reports (coarse edge
        // weights aggregate the fine ones).
        let g = gen::grid2d(24, 24);
        let h = coarsen(&ExecPolicy::serial(), &g, &opts(MapMethod::Hec));
        let coarsest = h.coarsest();
        let part: Vec<u32> = (0..coarsest.n() as u32).map(|v| v % 2).collect();
        let coarse_cut = edge_cut(coarsest, &part);
        let fine_part = h.project_to_fine(&part);
        let fine_cut = edge_cut(&g, &fine_part);
        assert_eq!(coarse_cut, fine_cut);
    }

    #[test]
    fn stats_track_every_level() {
        let g = gen::grid2d(30, 30);
        let h = coarsen(&ExecPolicy::serial(), &g, &opts(MapMethod::Hec));
        assert_eq!(h.stats.map_seconds.len(), h.num_levels());
        assert_eq!(h.stats.construct_seconds.len(), h.num_levels());
        assert!(h.stats.total_seconds() > 0.0);
        let f = h.stats.construction_fraction();
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn small_graph_is_left_alone() {
        let g = gen::complete(10); // already below the cutoff
        let h = coarsen(&ExecPolicy::serial(), &g, &opts(MapMethod::Hec));
        assert_eq!(h.num_levels(), 0);
        assert_eq!(h.coarsest().n(), 10);
        assert_eq!(h.avg_coarsening_ratio(), 1.0);
    }

    #[test]
    fn mis2_overshoot_discard_rule() {
        // MIS2 coarsens very aggressively; with a tight window the discard
        // rule must leave the coarsest graph at >= min_accept vertices (or
        // just above the cutoff if the last step was discarded).
        let g = gen::complete(60);
        let o = CoarsenOptions {
            method: MapMethod::Mis2,
            ..Default::default()
        };
        let h = coarsen(&ExecPolicy::serial(), &g, &o);
        assert!(
            h.coarsest().n() >= o.min_accept || h.coarsest().n() == g.n(),
            "coarsest {} violates discard rule",
            h.coarsest().n()
        );
    }

    #[test]
    fn all_methods_produce_valid_hierarchies() {
        let (g, _) = mlcg_graph::cc::largest_component(&gen::rmat(9, 8, 0.57, 0.19, 0.19, 3));
        for method in MapMethod::TABLE4 {
            let h = coarsen(&ExecPolicy::serial(), &g, &opts(method));
            for level in &h.levels {
                level
                    .graph
                    .validate()
                    .unwrap_or_else(|e| panic!("{method:?}: {e}"));
            }
            assert!(
                h.coarsest().n() <= 200,
                "{method:?} stopped early at {}",
                h.coarsest().n()
            );
        }
    }

    #[test]
    fn construction_methods_agree_along_hierarchy() {
        let g = gen::grid2d(25, 25);
        let p = ExecPolicy::serial();
        let mut hierarchies = Vec::new();
        for cm in ConstructMethod::ALL {
            let o = CoarsenOptions {
                method: MapMethod::Hec,
                construction: ConstructOptions::with_method(cm),
                ..Default::default()
            };
            hierarchies.push(coarsen(&p, &g, &o));
        }
        for h in &hierarchies[1..] {
            assert_eq!(h.num_levels(), hierarchies[0].num_levels());
            for (a, b) in h.levels.iter().zip(&hierarchies[0].levels) {
                assert_eq!(a.graph, b.graph, "construction methods diverged");
            }
        }
    }
}

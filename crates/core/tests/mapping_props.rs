//! Property suite for the mapping phase: every method must be
//! bit-identical between a fresh [`MapWorkspace`] and a shared, reused one
//! — on regular and hub-heavy families, across two consecutive hierarchy
//! levels — and the schedule-deterministic methods must additionally be
//! bit-identical across every execution policy. Also pins the workspace's
//! reason to exist: the mapping-phase allocation peak drops on hierarchy
//! levels ≥ 1 when one workspace is reused.
//!
//! Runs in the `MLCG_SPIN_US=0` pure-park CI stress job, where every
//! dispatch parks and wakes workers — the harshest schedule for the
//! compaction and relabel passes.

use mlcg_coarsen::{
    construct_coarse_graph, find_mapping, find_mapping_in, ConstructOptions, MapMethod,
    MapWorkspace,
};
use mlcg_graph::generators as gen;
use mlcg_graph::Csr;
use mlcg_par::ExecPolicy;

const ALL_METHODS: [MapMethod; 11] = [
    MapMethod::Hec,
    MapMethod::Hec2,
    MapMethod::Hec3,
    MapMethod::Hem,
    MapMethod::MtMetis,
    MapMethod::Gosh,
    MapMethod::GoshHec,
    MapMethod::Mis2,
    MapMethod::Suitor,
    MapMethod::SeqHec,
    MapMethod::SeqHem,
];

/// Methods whose output is independent of the parallel schedule: no
/// winner-takes-the-slot CAS race reaches the final labels. The remaining
/// methods (Hec, Hec2, Hem, MtMetis, Gosh) are deterministic under the
/// serial policy only.
const SCHEDULE_DETERMINISTIC: [MapMethod; 6] = [
    MapMethod::Hec3,
    MapMethod::GoshHec,
    MapMethod::Mis2,
    MapMethod::Suitor,
    MapMethod::SeqHec,
    MapMethod::SeqHem,
];

fn families() -> Vec<(&'static str, Csr)> {
    let (rmat, _) = mlcg_graph::cc::largest_component(&gen::rmat(9, 8, 0.57, 0.19, 0.19, 5));
    vec![
        ("grid-32x32", gen::grid2d(32, 32)),
        ("rmat-9", rmat),
        ("star-8192", gen::star(8192)),
    ]
}

#[test]
fn fresh_and_shared_workspace_bit_identical_all_methods() {
    // One workspace threaded through every (family × method × seed) run:
    // stale capacity, stale flags, or stale queue contents from any prior
    // run must never leak into a result.
    let serial = ExecPolicy::serial();
    let mut ws = MapWorkspace::new();
    for (name, g) in families() {
        for method in ALL_METHODS {
            for seed in [7u64, 42] {
                let (fresh, fresh_stats) = find_mapping(&serial, &g, method, seed);
                let (shared, shared_stats) = find_mapping_in(&serial, &g, method, seed, &mut ws);
                assert_eq!(fresh, shared, "{name}/{method:?}/seed{seed}");
                assert_eq!(
                    fresh_stats.passes, shared_stats.passes,
                    "{name}/{method:?}/seed{seed}: pass counts"
                );
                assert_eq!(
                    fresh_stats.resolved_per_pass, shared_stats.resolved_per_pass,
                    "{name}/{method:?}/seed{seed}: per-pass stats"
                );
            }
        }
    }
}

#[test]
fn schedule_deterministic_methods_identical_across_policies() {
    let serial = ExecPolicy::serial();
    for (name, g) in families() {
        for method in SCHEDULE_DETERMINISTIC {
            let (reference, _) = find_mapping(&serial, &g, method, 42);
            for policy in ExecPolicy::all_test_policies() {
                let mut ws = MapWorkspace::new();
                let (fresh, _) = find_mapping(&policy, &g, method, 42);
                let (shared, _) = find_mapping_in(&policy, &g, method, 42, &mut ws);
                assert_eq!(fresh, reference, "{name}/{method:?} under {policy}");
                assert_eq!(shared, reference, "{name}/{method:?} shared under {policy}");
            }
        }
    }
}

#[test]
fn racy_methods_stay_valid_and_comparable_under_parallel_policies() {
    // The CAS-racing methods cannot promise cross-policy bit-identity;
    // what they must deliver under any schedule is a valid mapping with a
    // coarsening ratio in the same ballpark as the serial reference.
    let serial = ExecPolicy::serial();
    let racy = [
        MapMethod::Hec,
        MapMethod::Hec2,
        MapMethod::Hem,
        MapMethod::MtMetis,
        MapMethod::Gosh,
    ];
    for (name, g) in families() {
        for method in racy {
            let (reference, _) = find_mapping(&serial, &g, method, 42);
            for policy in ExecPolicy::all_test_policies() {
                let mut ws = MapWorkspace::new();
                let (m, _) = find_mapping_in(&policy, &g, method, 42, &mut ws);
                m.validate()
                    .unwrap_or_else(|e| panic!("{name}/{method:?} under {policy}: {e}"));
                let r = m.coarsening_ratio() / reference.coarsening_ratio();
                assert!(
                    (0.4..=2.5).contains(&r),
                    "{name}/{method:?} under {policy}: ratio {} vs serial {}",
                    m.coarsening_ratio(),
                    reference.coarsening_ratio()
                );
            }
        }
    }
}

#[test]
fn two_consecutive_levels_through_one_workspace() {
    // Drive two hierarchy levels through a single workspace (exactly what
    // the multilevel driver does) and check each level's mapping against a
    // fresh-workspace run, for every method, under the serial policy
    // (where all methods are deterministic).
    let (g, _) = mlcg_graph::cc::largest_component(&gen::rmat(10, 8, 0.57, 0.19, 0.19, 7));
    let policy = ExecPolicy::serial();
    let copts = ConstructOptions::default();
    for method in ALL_METHODS {
        let mut ws = MapWorkspace::new();

        let (l0_fresh, _) = find_mapping(&policy, &g, method, 3);
        let (l0, _) = find_mapping_in(&policy, &g, method, 3, &mut ws);
        assert_eq!(l0, l0_fresh, "{method:?}: level 0");

        let coarse = construct_coarse_graph(&policy, &g, &l0, &copts);
        if coarse.n() <= 1 {
            continue; // star-like collapse: no level-1 mapping to compare
        }
        let (l1_fresh, _) = find_mapping(&policy, &coarse, method, 4);
        let (l1, _) = find_mapping_in(&policy, &coarse, method, 4, &mut ws);
        assert_eq!(l1, l1_fresh, "{method:?}: level 1 through reused workspace");
        l1.validate().unwrap();
    }
}

#[test]
fn workspace_reuse_drops_mapping_peak_on_later_levels() {
    // The workspace's acceptance criterion: mapping level 1 through the
    // workspace that already mapped level 0 must allocate strictly less at
    // peak than the same mapping with a cold workspace, because the heavy
    // array, ownership array, permutation scratch, queues, and relabel
    // flag are already sized. Serial policy so the tracking allocator sees
    // the full envelope (worker-thread allocations are attributed to the
    // allocating thread).
    let policy = ExecPolicy::serial();
    let g = gen::grid2d(64, 64);
    for method in [MapMethod::Hec, MapMethod::Hem, MapMethod::Mis2] {
        let mut ws = MapWorkspace::new();
        let (l0, _) = find_mapping_in(&policy, &g, method, 21, &mut ws);
        let coarse = construct_coarse_graph(&policy, &g, &l0, &ConstructOptions::default());

        let (_, fresh) = mlcg_par::mem::measure(|| {
            find_mapping_in(&policy, &coarse, method, 22, &mut MapWorkspace::new())
        });
        let (_, reused) =
            mlcg_par::mem::measure(|| find_mapping_in(&policy, &coarse, method, 22, &mut ws));
        assert!(
            reused.peak_bytes < fresh.peak_bytes,
            "{method:?}: reused workspace peak {} must be below cold-workspace peak {}",
            reused.peak_bytes,
            fresh.peak_bytes
        );
    }
}

//! Determinism and seed-sensitivity contracts for every mapping
//! algorithm: identical seeds must reproduce identical mappings under the
//! serial policy; different seeds must (for randomized methods on
//! non-trivial graphs) explore different mappings; parallel policies must
//! always produce *valid* mappings whose aggregate statistics stay close
//! to the serial ones.

use mlcg_coarsen::{find_mapping, MapMethod};
use mlcg_graph::cc::largest_component;
use mlcg_graph::generators as gen;
use mlcg_graph::Csr;
use mlcg_par::ExecPolicy;

fn test_graphs() -> Vec<(&'static str, Csr)> {
    vec![
        ("grid", gen::grid2d(20, 20)),
        (
            "rmat",
            largest_component(&gen::rmat(10, 8, 0.57, 0.19, 0.19, 5)).0,
        ),
        (
            "delaunay",
            largest_component(&gen::delaunay_like(18, 18, 2)).0,
        ),
    ]
}

fn all_methods() -> Vec<MapMethod> {
    vec![
        MapMethod::Hec,
        MapMethod::Hec2,
        MapMethod::Hec3,
        MapMethod::Hem,
        MapMethod::MtMetis,
        MapMethod::Gosh,
        MapMethod::GoshHec,
        MapMethod::Mis2,
        MapMethod::Suitor,
        MapMethod::SeqHec,
        MapMethod::SeqHem,
    ]
}

#[test]
fn serial_runs_are_reproducible() {
    let policy = ExecPolicy::serial();
    for (name, g) in test_graphs() {
        for method in all_methods() {
            let (a, _) = find_mapping(&policy, &g, method, 1234);
            let (b, _) = find_mapping(&policy, &g, method, 1234);
            assert_eq!(a, b, "{name}/{method:?}: serial run not reproducible");
        }
    }
}

#[test]
fn seeds_change_randomized_mappings() {
    let policy = ExecPolicy::serial();
    let (_, g) = &test_graphs()[0];
    // Methods whose visit order or priorities are seeded.
    for method in [
        MapMethod::Hec,
        MapMethod::Hem,
        MapMethod::Mis2,
        MapMethod::SeqHec,
        MapMethod::SeqHem,
    ] {
        let (a, _) = find_mapping(&policy, g, method, 1);
        let mut any_differs = false;
        for seed in 2..6 {
            let (b, _) = find_mapping(&policy, g, method, seed);
            if a != b {
                any_differs = true;
                break;
            }
        }
        assert!(any_differs, "{method:?} ignored its seed");
    }
}

#[test]
fn parallel_policies_track_serial_statistics() {
    for (name, g) in test_graphs() {
        for method in all_methods() {
            let (serial, _) = find_mapping(&ExecPolicy::serial(), &g, method, 5);
            for policy in ExecPolicy::all_test_policies() {
                let (m, _) = find_mapping(&policy, &g, method, 5);
                m.validate()
                    .unwrap_or_else(|e| panic!("{name}/{method:?}/{policy}: {e}"));
                let ratio = m.n_coarse as f64 / serial.n_coarse as f64;
                assert!(
                    (0.5..=2.0).contains(&ratio),
                    "{name}/{method:?}/{policy}: coarse count {} vs serial {}",
                    m.n_coarse,
                    serial.n_coarse
                );
            }
        }
    }
}

#[test]
fn matching_methods_never_break_the_pair_bound_under_any_policy() {
    for (name, g) in test_graphs() {
        for method in [
            MapMethod::Hem,
            MapMethod::MtMetis,
            MapMethod::Suitor,
            MapMethod::SeqHem,
        ] {
            for policy in ExecPolicy::all_test_policies() {
                let (m, _) = find_mapping(&policy, &g, method, 3);
                let max = m.aggregate_sizes().into_iter().max().unwrap_or(0);
                assert!(max <= 2, "{name}/{method:?}/{policy}: aggregate {max}");
            }
        }
    }
}

#[test]
fn multilevel_serial_hierarchies_are_reproducible() {
    use mlcg_coarsen::{coarsen, CoarsenOptions};
    let g = gen::grid2d(24, 24);
    let policy = ExecPolicy::serial();
    let opts = CoarsenOptions {
        seed: 99,
        ..Default::default()
    };
    let a = coarsen(&policy, &g, &opts);
    let b = coarsen(&policy, &g, &opts);
    assert_eq!(a.num_levels(), b.num_levels());
    for (la, lb) in a.levels.iter().zip(&b.levels) {
        assert_eq!(la.graph, lb.graph);
        assert_eq!(la.mapping, lb.mapping);
    }
}

//! Property suite for coarse-graph construction: every strategy must be
//! bit-identical across dedup flavours, skew thresholds, execution
//! policies, and workspace reuse — on regular and hub-heavy families —
//! while conserving weights and producing valid CSRs. Also pins the
//! workspace's reason to exist: `mem/construct/peak_bytes` drops on
//! hierarchy levels ≥ 1 when one [`ConstructWorkspace`] is reused.
//!
//! Runs in the `MLCG_SPIN_US=0` pure-park CI stress job, where every
//! dispatch parks and wakes workers — the harshest schedule for the
//! histogram-merge and stitch passes.

use mlcg_coarsen::construct::testkit;
use mlcg_coarsen::{
    construct_coarse_graph_in, ConstructMethod, ConstructOptions, ConstructWorkspace, Mapping,
};
use mlcg_graph::generators as gen;
use mlcg_graph::Csr;
use mlcg_par::ExecPolicy;

/// Hub alone, leaves in groups of 8: the coarse graph is again a star and
/// aggregate 0 receives every scattered entry — the adversarial shape the
/// hub-sharded scatter exists for.
fn grouped_star_mapping(n: usize) -> Mapping {
    let map: Vec<u32> = (0..n as u32)
        .map(|u| if u == 0 { 0 } else { 1 + (u - 1) / 8 })
        .collect();
    let n_coarse = (*map.iter().max().unwrap() + 1) as usize;
    let m = Mapping { map, n_coarse };
    m.validate().unwrap();
    m
}

fn families() -> Vec<(&'static str, Csr, Mapping)> {
    let grid = gen::grid2d(32, 32);
    let grid_map = testkit::mapped(&grid, 11);
    let (rmat, _) = mlcg_graph::cc::largest_component(&gen::rmat(9, 8, 0.57, 0.19, 0.19, 5));
    let rmat_map = testkit::mapped(&rmat, 13);
    // Big enough that the hub aggregate's raw count crosses the shard
    // threshold under every parallel policy, in both skew-path variants.
    let star = gen::star(8192);
    let star_map = grouped_star_mapping(8192);
    vec![
        ("grid-32x32", grid, grid_map),
        ("rmat-9", rmat, rmat_map),
        ("star-8192", star, star_map),
    ]
}

#[test]
fn all_methods_policies_and_workspace_reuse_bit_identical() {
    let policies = ExecPolicy::all_test_policies();
    for (name, g, mapping) in families() {
        // cross_check_policies runs every method × threshold × policy,
        // each both with a fresh workspace and through one shared
        // workspace, and asserts bit-identity + conservation + validity.
        let c = testkit::cross_check_policies(&g, &mapping, &policies);
        assert_eq!(c.n(), mapping.n_coarse, "{name}");
    }
}

#[test]
fn two_consecutive_levels_through_one_workspace() {
    // Drive two hierarchy levels through a single workspace (exactly what
    // the multilevel driver does) and check each level against a
    // fresh-workspace build, for every method, under a parallel policy.
    let (g, _) = mlcg_graph::cc::largest_component(&gen::rmat(10, 8, 0.57, 0.19, 0.19, 7));
    let policy = ExecPolicy::host();
    for method in ConstructMethod::ALL {
        let opts = ConstructOptions::with_method(method);
        let mut ws = ConstructWorkspace::new();

        let map0 = testkit::mapped(&g, 3);
        let l1_fresh =
            construct_coarse_graph_in(&policy, &g, &map0, &opts, &mut ConstructWorkspace::new());
        let l1 = construct_coarse_graph_in(&policy, &g, &map0, &opts, &mut ws);
        assert_eq!(l1, l1_fresh, "{method:?}: level 0");

        let map1 = testkit::mapped(&l1, 4);
        let l2_fresh =
            construct_coarse_graph_in(&policy, &l1, &map1, &opts, &mut ConstructWorkspace::new());
        let l2 = construct_coarse_graph_in(&policy, &l1, &map1, &opts, &mut ws);
        assert_eq!(l2, l2_fresh, "{method:?}: level 1 through reused workspace");
        l2.validate().unwrap();
    }
}

#[test]
fn workspace_reuse_drops_construct_peak_on_later_levels() {
    // The workspace's acceptance criterion: constructing level 1 through
    // the workspace that already built level 0 must allocate strictly less
    // at peak than the same construction with a cold workspace, because
    // the counting arrays, F/X, and the pooled scratch are already sized.
    // Serial policy so the tracking allocator sees the full envelope
    // (worker-thread allocations are attributed to the allocating thread).
    let policy = ExecPolicy::serial();
    let g = gen::grid2d(64, 64);
    for method in [
        ConstructMethod::Sort,
        ConstructMethod::Hash,
        ConstructMethod::GlobalSort,
    ] {
        let opts = ConstructOptions::with_method(method);
        let mut ws = ConstructWorkspace::new();

        let map0 = testkit::mapped(&g, 21);
        let l1 = construct_coarse_graph_in(&policy, &g, &map0, &opts, &mut ws);
        let map1 = testkit::mapped(&l1, 22);

        let (_, fresh) = mlcg_par::mem::measure(|| {
            construct_coarse_graph_in(&policy, &l1, &map1, &opts, &mut ConstructWorkspace::new())
        });
        let (_, reused) = mlcg_par::mem::measure(|| {
            construct_coarse_graph_in(&policy, &l1, &map1, &opts, &mut ws)
        });
        assert!(
            reused.peak_bytes < fresh.peak_bytes,
            "{method:?}: reused workspace peak {} must be below cold-workspace peak {}",
            reused.peak_bytes,
            fresh.peak_bytes
        );
    }
}

//! Smoke tests for the reproduction harness: the corpus-free experiments
//! run end-to-end, and every experiment name dispatches.

use mlcg_bench::{exp, Ctx};

#[test]
fn fig1_and_fig2_run_without_a_corpus() {
    let ctx = Ctx {
        runs: 1,
        ..Default::default()
    };
    assert_eq!(exp::run("fig1", &ctx), Some(0));
    assert_eq!(exp::run("fig2", &ctx), Some(0));
    // The DOT outputs land under target/repro.
    assert!(
        std::path::Path::new("target/repro/fig2-heavy-digraph.dot").exists()
            || std::path::Path::new("../../target/repro/fig2-heavy-digraph.dot").exists()
    );
}

#[test]
fn unknown_experiment_is_rejected() {
    let ctx = Ctx::default();
    assert_eq!(exp::run("not-an-experiment", &ctx), None);
}

#[test]
fn all_experiment_names_are_known() {
    // Dispatch-table consistency: every name in ALL resolves (we don't run
    // the heavy ones here, just verify fig/cheap entries and the parse).
    for name in exp::ALL {
        assert!(
            [
                "table1",
                "table2",
                "table3",
                "table4",
                "table5",
                "table6",
                "fig1",
                "fig2",
                "fig3-left",
                "fig3-mid",
                "fig3-right",
                "ablate-dedup",
                "bench-coarsen",
                "bench-fm",
                "bench-ingest",
                "bench-kway",
                "bench-map",
                "bench-parref",
                "extended-methods",
                "trace",
            ]
            .contains(&name),
            "unexpected experiment {name}"
        );
    }
}

//! Criterion micro-bench for coarse-graph construction (Tables II/III and
//! the degree-based dedup ablation): sort vs hash vs SpGEMM vs global-sort
//! on one regular and one skewed graph, under host and device-sim
//! policies, with the optimization on and off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlcg_coarsen::{
    construct_coarse_graph, find_mapping, ConstructMethod, ConstructOptions, MapMethod,
};
use mlcg_graph::cc::largest_component;
use mlcg_graph::generators;
use mlcg_par::ExecPolicy;

fn bench_construction(c: &mut Criterion) {
    let regular = generators::grid2d(120, 120);
    let (skewed, _) = largest_component(&generators::rmat(13, 10, 0.57, 0.19, 0.19, 7));

    for (gname, g) in [("grid-120x120", &regular), ("rmat-13", &skewed)] {
        let serial = ExecPolicy::serial();
        let (mapping, _) = find_mapping(&serial, g, MapMethod::Hec, 42);
        for (pname, policy) in [("host", ExecPolicy::host()), ("device", ExecPolicy::device_sim())]
        {
            let mut group = c.benchmark_group(format!("construction/{gname}/{pname}"));
            group.sample_size(10);
            for method in ConstructMethod::ALL {
                group.bench_with_input(
                    BenchmarkId::from_parameter(method.name()),
                    g,
                    |b, g| {
                        let opts = ConstructOptions::with_method(method);
                        b.iter(|| construct_coarse_graph(&policy, g, &mapping, &opts));
                    },
                );
            }
            // Ablation: sort-dedup with the degree optimization disabled.
            group.bench_with_input(BenchmarkId::from_parameter("sort-no-opt"), g, |b, g| {
                let opts = ConstructOptions {
                    method: ConstructMethod::Sort,
                    degree_dedup_skew_threshold: f64::INFINITY,
                };
                b.iter(|| construct_coarse_graph(&policy, g, &mapping, &opts));
            });
            group.finish();
        }
    }
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);

//! Micro-bench for coarse-graph construction (Tables II/III and the
//! degree-based dedup ablation): sort vs hash vs SpGEMM vs global-sort on
//! one regular and one skewed graph, under host and device-sim policies,
//! with the optimization on and off.
//!
//! Plain `fn main()` harness:
//! `cargo bench -p mlcg-bench --bench bench_construction`.

use mlcg_bench::harness::microbench;
use mlcg_coarsen::{
    construct_coarse_graph, find_mapping, ConstructMethod, ConstructOptions, MapMethod,
};
use mlcg_graph::cc::largest_component;
use mlcg_graph::generators;
use mlcg_par::ExecPolicy;

const RUNS: usize = 10;

fn main() {
    let regular = generators::grid2d(120, 120);
    let (skewed, _) = largest_component(&generators::rmat(13, 10, 0.57, 0.19, 0.19, 7));

    for (gname, g) in [("grid-120x120", &regular), ("rmat-13", &skewed)] {
        let serial = ExecPolicy::serial();
        let (mapping, _) = find_mapping(&serial, g, MapMethod::Hec, 42);
        for (pname, policy) in [
            ("host", ExecPolicy::host()),
            ("device", ExecPolicy::device_sim()),
        ] {
            let group = format!("construction/{gname}/{pname}");
            for method in ConstructMethod::ALL {
                let opts = ConstructOptions::with_method(method);
                microbench(&group, method.name(), RUNS, || {
                    construct_coarse_graph(&policy, g, &mapping, &opts)
                });
            }
            // Ablation: sort-dedup with the degree optimization disabled.
            let opts = ConstructOptions {
                method: ConstructMethod::Sort,
                degree_dedup_skew_threshold: f64::INFINITY,
            };
            microbench(&group, "sort-no-opt", RUNS, || {
                construct_coarse_graph(&policy, g, &mapping, &opts)
            });
        }
    }
}

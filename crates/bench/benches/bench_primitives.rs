//! Micro-bench for the parallel substrate (the Kokkos substitute): prefix
//! sums, radix sort, random permutation, SpMV and SpGEMM — the kernels
//! behind Fig. 3's rates — plus the disabled-trace / disabled-profile
//! overhead checks for the observability layer and the pool's
//! empty-dispatch round-trip latency (spin vs park-only wakeup paths).
//!
//! Plain `fn main()` harness (no external bench framework):
//! `cargo bench -p mlcg-bench --bench bench_primitives`.

use mlcg_bench::harness::microbench;
use mlcg_graph::generators;
use mlcg_par::perm::random_permutation;
use mlcg_par::rng::hash_index;
use mlcg_par::scan::exclusive_scan;
use mlcg_par::sort::par_radix_sort_pairs;
use mlcg_par::{ExecPolicy, TraceCollector};
use mlcg_sparse::{spgemm, spmv, CsrMatrix};

const RUNS: usize = 10;

fn main() {
    let n = 1 << 20;
    for (pname, policy) in [
        ("serial", ExecPolicy::serial()),
        ("host", ExecPolicy::host()),
        ("device", ExecPolicy::device_sim()),
    ] {
        let group = format!("primitives/{pname}");
        {
            let data: Vec<u64> = (0..n as u64).map(|i| i % 7).collect();
            microbench(&group, "exclusive-scan-1M", RUNS, || {
                let mut d = data.clone();
                exclusive_scan(&policy, &mut d)
            });
        }
        {
            let keys: Vec<u64> = (0..n as u64).map(|i| hash_index(3, i)).collect();
            let vals: Vec<u32> = (0..n as u32).collect();
            microbench(&group, "radix-sort-1M", RUNS, || {
                let mut k = keys.clone();
                let mut v = vals.clone();
                par_radix_sort_pairs(&policy, &mut k, &mut v);
                k[0]
            });
        }
        microbench(&group, "random-permutation-1M", RUNS, || {
            random_permutation(&policy, n, 42)
        });
    }

    let g = generators::grid2d(256, 256);
    let a = CsrMatrix::from_graph(&g);
    let policy = ExecPolicy::host();
    {
        let x = vec![1.0f64; a.n_cols];
        let mut y = vec![0.0f64; a.n_rows];
        microbench("sparse", "spmv-grid-256", RUNS, || {
            spmv(&policy, &a, &x, &mut y)
        });
    }
    {
        let mapping: Vec<u32> = (0..g.n()).map(|u| (u / 4) as u32).collect();
        let p = CsrMatrix::prolongation(&mapping, g.n().div_ceil(4));
        microbench("sparse", "spgemm-prolongation", RUNS, || {
            spgemm(&policy, &p, &a)
        });
    }

    agg_vwgt_contention();
    trace_overhead(n);
    profile_overhead(n);
    dispatch_latency();
    mem_overhead();
}

/// Before/after for `construct/agg_vwgt`: the retained atomic formulation
/// (one `fetch_add` per fine vertex into the destination aggregate's slot)
/// versus the sharded per-participant accumulation + merge that
/// construction now uses. The star case collapses every vertex into ONE
/// aggregate — the maximal-contention shape where the old path serializes
/// all workers on a single cache line — while the grid case (HEC-style
/// pairing, `n/2` aggregates) shows the spread-out regime where the merge
/// reduction is pure overhead the budget rule must keep cheap.
fn agg_vwgt_contention() {
    use mlcg_coarsen::construct::{aggregate_vertex_weights_atomic, aggregate_vertex_weights_in};
    use mlcg_coarsen::{ConstructWorkspace, Mapping};

    let policy = ExecPolicy::host();
    let star = generators::star(1 << 20);
    let star_map = Mapping {
        map: vec![0u32; star.n()],
        n_coarse: 1,
    };
    let grid = generators::grid2d(512, 512);
    let grid_map = Mapping {
        map: (0..grid.n() as u32).map(|u| u / 2).collect(),
        n_coarse: grid.n().div_ceil(2),
    };

    for (name, g, mapping) in [
        ("star-1M", &star, &star_map),
        ("grid-512", &grid, &grid_map),
    ] {
        let before = microbench(
            "construct/agg_vwgt",
            &format!("{name}-atomic"),
            RUNS,
            || aggregate_vertex_weights_atomic(&policy, g, mapping),
        );
        let mut ws = ConstructWorkspace::new();
        let after = microbench(
            "construct/agg_vwgt",
            &format!("{name}-sharded"),
            RUNS,
            || aggregate_vertex_weights_in(&policy, g, mapping, &mut ws),
        );
        // Identity check while we're here: both formulations must agree.
        assert_eq!(
            aggregate_vertex_weights_atomic(&policy, g, mapping),
            aggregate_vertex_weights_in(&policy, g, mapping, &mut ws),
            "{name}: sharded aggregation diverged from the atomic baseline"
        );
        println!(
            "construct/agg_vwgt/{name}: sharded/atomic ratio {:.4} (below 1.0 means the \
             contention fix wins)",
            after / before
        );
    }
}

/// Allocation round-trip through the tracking global allocator versus the
/// raw `System` allocator it wraps. With no `mem::scope()` open (the
/// default for every production code path that isn't tracing), the wrapper
/// adds a handful of relaxed atomic adds and one thread-local depth check
/// per call — the gate asserts that stays within noise of `System`.
fn mem_overhead() {
    use std::alloc::{GlobalAlloc, Layout, System};
    let iters = 200_000usize;
    let size = 4096usize;
    let layout = Layout::from_size_align(size, 1).unwrap();

    // Raw System path: calls the platform allocator directly, bypassing
    // the `#[global_allocator]` wrapper entirely.
    let raw = microbench("mem-overhead", "system-raw", RUNS, || {
        for _ in 0..iters {
            unsafe {
                let p = System.alloc(layout);
                assert!(!p.is_null());
                std::ptr::write_volatile(p, 1u8);
                System.dealloc(p, layout);
            }
        }
    });

    // Tracked path: the identical alloc/dealloc shape routed through the
    // `#[global_allocator]` wrapper (std::alloc free functions dispatch
    // to it), so the only difference from the raw loop is the tracking.
    let tracked = microbench("mem-overhead", "tracked-global", RUNS, || {
        for _ in 0..iters {
            unsafe {
                let p = std::alloc::alloc(layout);
                assert!(!p.is_null());
                std::ptr::write_volatile(p, 1u8);
                std::alloc::dealloc(p, layout);
            }
        }
    });

    let ratio = tracked / raw;
    println!(
        "mem-overhead/ratio: {ratio:.4} (tracked global / raw System), \
         {:.2} ns per tracked round-trip",
        tracked / iters as f64 * 1e9
    );
    // Gate arithmetic: the no-scope hot path is four relaxed atomic RMWs
    // plus two relaxed loads per alloc/dealloc round-trip (~20-30 ns),
    // while a System fast-path round-trip doing nothing else is ~50 ns —
    // so even this most adversarial shape (no work to amortize against)
    // tops out near 1.6x. The gate exists to catch a lock, syscall, or
    // lazy TLS init sneaking into the hook (10-100x blowups), with
    // headroom for runner variance.
    assert!(
        ratio < 1.75,
        "tracking allocator overhead ratio {ratio:.4} exceeds the 1.75 gate; \
         the untraced path must stay a few relaxed atomics"
    );
}

/// Empty-dispatch round-trip on a hot 4-participant pool: the cost of
/// publishing a job, waking every worker, and waiting for all of them, with
/// no work in between — the floor under every sub-ms kernel dispatch. Runs
/// once with the spin window active (the fast path: a hot dispatch
/// completes without locks or syscalls) and once with spin forced to 0 (the
/// pure-park path CI machines use via `MLCG_SPIN_US=0`).
fn dispatch_latency() {
    use mlcg_par::pool::{set_spin_us, spin_us, ThreadPool};
    let pool = ThreadPool::new(4);
    let iters = 20_000u32;
    let entry = spin_us();
    for (mode, window) in [("spin", 200u64), ("park-only", 0u64)] {
        set_spin_us(window);
        // Warm the pool so workers sit in the chosen wait phase.
        for _ in 0..1_000 {
            pool.dispatch(4, &|_w, _c| {});
        }
        let secs = microbench("dispatch-latency", mode, RUNS, || {
            for _ in 0..iters {
                pool.dispatch(4, &|_w, _c| {});
            }
        });
        println!(
            "dispatch-latency/{mode}: {:.2} us per empty 4-participant round-trip",
            secs / iters as f64 * 1e6
        );
    }
    set_spin_us(entry);
}

/// Compare a scan loop bare against the same loop wrapped in disabled
/// trace spans/counters, and report per-span cost of the disabled
/// collector. The disabled path must stay within noise (<2%).
fn trace_overhead(n: usize) {
    let policy = ExecPolicy::host();
    let data: Vec<u64> = (0..n as u64).map(|i| i % 7).collect();

    let bare = microbench("trace-overhead", "scan-bare", RUNS, || {
        let mut d = data.clone();
        exclusive_scan(&policy, &mut d)
    });

    let trace = TraceCollector::disabled();
    let wrapped = microbench("trace-overhead", "scan-disabled-span", RUNS, || {
        let span = trace.span(|| "bench/scan".to_string());
        let mut d = data.clone();
        let total = exclusive_scan(&policy, &mut d);
        trace.counter_add("bench/elements", d.len() as u64);
        span.finish();
        total
    });
    println!(
        "trace-overhead/ratio: {:.4} (disabled-span / bare; must stay ~1.0)",
        wrapped / bare
    );

    // Raw per-call cost of a disabled span (open + close in a tight loop).
    let spans = 1_000_000u64;
    let secs = microbench("trace-overhead", "disabled-span-1M", RUNS, || {
        for _ in 0..spans {
            trace
                .span(|| unreachable!("disabled span must not build its path"))
                .finish();
        }
    });
    println!(
        "trace-overhead/per-span: {:.2} ns",
        secs / spans as f64 * 1e9
    );
}

/// Dispatch cost with no profiling session installed (one relaxed atomic
/// load + branch per dispatch) versus the same loop with the profiler
/// recording, plus kernel-label guard cost. Run after `trace_overhead` so
/// no collector is live during the uninstrumented measurements.
fn profile_overhead(n: usize) {
    use mlcg_par::{parallel_for, profile};
    let policy = ExecPolicy::host();
    let data: Vec<u64> = (0..n as u64).map(|i| i % 7).collect();
    let sum_under = |policy: &ExecPolicy, data: &[u64]| {
        let acc = std::sync::atomic::AtomicU64::new(0);
        parallel_for(policy, data.len(), |i| {
            if data[i] == 6 {
                acc.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        });
        acc.load(std::sync::atomic::Ordering::Relaxed)
    };

    assert!(
        !profile::profiling(),
        "no session may be live for the baseline"
    );
    let bare = microbench("profile-overhead", "par-for-uninstrumented", RUNS, || {
        sum_under(&policy, &data)
    });

    let trace = TraceCollector::enabled();
    let installed = {
        let _p = profile::install(&trace);
        microbench("profile-overhead", "par-for-profiled", RUNS, || {
            sum_under(&policy, &data)
        })
    };
    println!(
        "profile-overhead/ratio: {:.4} (profiled / uninstrumented dispatch)",
        installed / bare
    );
    println!(
        "profile-overhead/recorded-dispatches: {}",
        trace.report().dispatches.len()
    );

    // Raw per-guard cost of a kernel label (thread-local push/pop).
    let labels = 1_000_000u64;
    let secs = microbench("profile-overhead", "kernel-label-1M", RUNS, || {
        for _ in 0..labels {
            let _k = profile::kernel("bench");
        }
    });
    println!(
        "profile-overhead/per-label: {:.2} ns",
        secs / labels as f64 * 1e9
    );
}

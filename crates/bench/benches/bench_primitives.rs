//! Criterion micro-bench for the parallel substrate (the Kokkos
//! substitute): prefix sums, radix sort, random permutation, SpMV and
//! SpGEMM — the kernels behind Fig. 3's rates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mlcg_graph::generators;
use mlcg_par::perm::random_permutation;
use mlcg_par::rng::hash_index;
use mlcg_par::scan::exclusive_scan;
use mlcg_par::sort::par_radix_sort_pairs;
use mlcg_par::ExecPolicy;
use mlcg_sparse::{spgemm, spmv, CsrMatrix};

fn bench_primitives(c: &mut Criterion) {
    let n = 1 << 20;
    for (pname, policy) in [
        ("serial", ExecPolicy::serial()),
        ("host", ExecPolicy::host()),
        ("device", ExecPolicy::device_sim()),
    ] {
        let mut group = c.benchmark_group(format!("primitives/{pname}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(BenchmarkId::from_parameter("exclusive-scan-1M"), |b| {
            let data: Vec<u64> = (0..n as u64).map(|i| i % 7).collect();
            b.iter(|| {
                let mut d = data.clone();
                exclusive_scan(&policy, &mut d)
            });
        });
        group.bench_function(BenchmarkId::from_parameter("radix-sort-1M"), |b| {
            let keys: Vec<u64> = (0..n as u64).map(|i| hash_index(3, i)).collect();
            let vals: Vec<u32> = (0..n as u32).collect();
            b.iter(|| {
                let mut k = keys.clone();
                let mut v = vals.clone();
                par_radix_sort_pairs(&policy, &mut k, &mut v);
                k[0]
            });
        });
        group.bench_function(BenchmarkId::from_parameter("random-permutation-1M"), |b| {
            b.iter(|| random_permutation(&policy, n, 42));
        });
        group.finish();
    }

    let g = generators::grid2d(256, 256);
    let a = CsrMatrix::from_graph(&g);
    let policy = ExecPolicy::host();
    let mut group = c.benchmark_group("sparse");
    group.sample_size(10);
    group.bench_function("spmv-grid-256", |b| {
        let x = vec![1.0f64; a.n_cols];
        let mut y = vec![0.0f64; a.n_rows];
        b.iter(|| spmv(&policy, &a, &x, &mut y));
    });
    group.bench_function("spgemm-prolongation", |b| {
        let mapping: Vec<u32> = (0..g.n()).map(|u| (u / 4) as u32).collect();
        let p = CsrMatrix::prolongation(&mapping, g.n().div_ceil(4));
        b.iter(|| spgemm(&policy, &p, &a));
    });
    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);

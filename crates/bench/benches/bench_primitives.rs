//! Micro-bench for the parallel substrate (the Kokkos substitute): prefix
//! sums, radix sort, random permutation, SpMV and SpGEMM — the kernels
//! behind Fig. 3's rates — plus the disabled-trace overhead check for the
//! observability layer.
//!
//! Plain `fn main()` harness (no external bench framework):
//! `cargo bench -p mlcg-bench --bench bench_primitives`.

use mlcg_bench::harness::microbench;
use mlcg_graph::generators;
use mlcg_par::perm::random_permutation;
use mlcg_par::rng::hash_index;
use mlcg_par::scan::exclusive_scan;
use mlcg_par::sort::par_radix_sort_pairs;
use mlcg_par::{ExecPolicy, TraceCollector};
use mlcg_sparse::{spgemm, spmv, CsrMatrix};

const RUNS: usize = 10;

fn main() {
    let n = 1 << 20;
    for (pname, policy) in [
        ("serial", ExecPolicy::serial()),
        ("host", ExecPolicy::host()),
        ("device", ExecPolicy::device_sim()),
    ] {
        let group = format!("primitives/{pname}");
        {
            let data: Vec<u64> = (0..n as u64).map(|i| i % 7).collect();
            microbench(&group, "exclusive-scan-1M", RUNS, || {
                let mut d = data.clone();
                exclusive_scan(&policy, &mut d)
            });
        }
        {
            let keys: Vec<u64> = (0..n as u64).map(|i| hash_index(3, i)).collect();
            let vals: Vec<u32> = (0..n as u32).collect();
            microbench(&group, "radix-sort-1M", RUNS, || {
                let mut k = keys.clone();
                let mut v = vals.clone();
                par_radix_sort_pairs(&policy, &mut k, &mut v);
                k[0]
            });
        }
        microbench(&group, "random-permutation-1M", RUNS, || {
            random_permutation(&policy, n, 42)
        });
    }

    let g = generators::grid2d(256, 256);
    let a = CsrMatrix::from_graph(&g);
    let policy = ExecPolicy::host();
    {
        let x = vec![1.0f64; a.n_cols];
        let mut y = vec![0.0f64; a.n_rows];
        microbench("sparse", "spmv-grid-256", RUNS, || {
            spmv(&policy, &a, &x, &mut y)
        });
    }
    {
        let mapping: Vec<u32> = (0..g.n()).map(|u| (u / 4) as u32).collect();
        let p = CsrMatrix::prolongation(&mapping, g.n().div_ceil(4));
        microbench("sparse", "spgemm-prolongation", RUNS, || {
            spgemm(&policy, &p, &a)
        });
    }

    trace_overhead(n);
}

/// Compare a scan loop bare against the same loop wrapped in disabled
/// trace spans/counters, and report per-span cost of the disabled
/// collector. The disabled path must stay within noise (<2%).
fn trace_overhead(n: usize) {
    let policy = ExecPolicy::host();
    let data: Vec<u64> = (0..n as u64).map(|i| i % 7).collect();

    let bare = microbench("trace-overhead", "scan-bare", RUNS, || {
        let mut d = data.clone();
        exclusive_scan(&policy, &mut d)
    });

    let trace = TraceCollector::disabled();
    let wrapped = microbench("trace-overhead", "scan-disabled-span", RUNS, || {
        let span = trace.span(|| "bench/scan".to_string());
        let mut d = data.clone();
        let total = exclusive_scan(&policy, &mut d);
        trace.counter_add("bench/elements", d.len() as u64);
        span.finish();
        total
    });
    println!(
        "trace-overhead/ratio: {:.4} (disabled-span / bare; must stay ~1.0)",
        wrapped / bare
    );

    // Raw per-call cost of a disabled span (open + close in a tight loop).
    let spans = 1_000_000u64;
    let secs = microbench("trace-overhead", "disabled-span-1M", RUNS, || {
        for _ in 0..spans {
            trace
                .span(|| unreachable!("disabled span must not build its path"))
                .finish();
        }
    });
    println!(
        "trace-overhead/per-span: {:.2} ns",
        secs / spans as f64 * 1e9
    );
}

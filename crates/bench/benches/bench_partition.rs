//! Micro-bench for the partitioners (Tables V/VI): FM + HEC, spectral +
//! HEC, and the Metis-like baselines on one regular and one skewed graph.
//!
//! Plain `fn main()` harness:
//! `cargo bench -p mlcg-bench --bench bench_partition`.

use mlcg_bench::harness::microbench;
use mlcg_coarsen::CoarsenOptions;
use mlcg_graph::cc::largest_component;
use mlcg_graph::generators;
use mlcg_par::ExecPolicy;
use mlcg_partition::{
    fm_bisect, metis_like, mtmetis_like, spectral_bisect, FmConfig, SpectralConfig,
};

const RUNS: usize = 10;

fn main() {
    let regular = generators::grid2d(90, 90);
    let (skewed, _) = largest_component(&generators::rmat(12, 8, 0.57, 0.19, 0.19, 7));
    let policy = ExecPolicy::host();
    // Smoke-scale caps so the spectral bench finishes quickly.
    let spectral_cfg = SpectralConfig {
        tol: 1e-10,
        coarse_max_iters: 1000,
        refine_max_iters: 100,
    };

    for (gname, g) in [("grid-90x90", &regular), ("rmat-12", &skewed)] {
        let group = format!("partition/{gname}");
        microbench(&group, "fm+hec", RUNS, || {
            fm_bisect(
                &policy,
                g,
                &CoarsenOptions::default(),
                &FmConfig::default(),
                42,
            )
        });
        microbench(&group, "spectral+hec", RUNS, || {
            spectral_bisect(&policy, g, &CoarsenOptions::default(), &spectral_cfg, 42)
        });
        microbench(&group, "metis-like", RUNS, || metis_like(g, 42));
        microbench(&group, "mtmetis-like", RUNS, || {
            mtmetis_like(&policy, g, 42)
        });
    }
}

//! Micro-bench for the partitioners (Tables V/VI): FM + HEC, spectral +
//! HEC, and the Metis-like baselines on one regular and one skewed graph.
//!
//! Plain `fn main()` harness:
//! `cargo bench -p mlcg-bench --bench bench_partition`.

use mlcg_bench::harness::microbench;
use mlcg_coarsen::{coarsen, CoarsenOptions};
use mlcg_graph::cc::largest_component;
use mlcg_graph::generators;
use mlcg_par::ExecPolicy;
use mlcg_partition::fm::fm_uncoarsen_frac;
use mlcg_partition::{
    fm_bisect, fm_uncoarsen_frac_full_scan, metis_like, mtmetis_like, spectral_bisect, FmConfig,
    SpectralConfig,
};

const RUNS: usize = 10;

fn main() {
    let regular = generators::grid2d(90, 90);
    let (skewed, _) = largest_component(&generators::rmat(12, 8, 0.57, 0.19, 0.19, 7));
    let policy = ExecPolicy::host();
    // Smoke-scale caps so the spectral bench finishes quickly.
    let spectral_cfg = SpectralConfig {
        tol: 1e-10,
        coarse_max_iters: 1000,
        refine_max_iters: 100,
        fm_polish: None,
    };

    for (gname, g) in [("grid-90x90", &regular), ("rmat-12", &skewed)] {
        let group = format!("partition/{gname}");
        microbench(&group, "fm+hec", RUNS, || {
            fm_bisect(
                &policy,
                g,
                &CoarsenOptions::default(),
                &FmConfig::default(),
                42,
            )
        });
        microbench(&group, "spectral+hec", RUNS, || {
            spectral_bisect(&policy, g, &CoarsenOptions::default(), &spectral_cfg, 42)
        });
        microbench(&group, "metis-like", RUNS, || metis_like(g, 42));
        microbench(&group, "mtmetis-like", RUNS, || {
            mtmetis_like(&policy, g, 42)
        });
    }

    // Boundary-driven vs full-scan FM refinement on a shared hierarchy:
    // only the uncoarsening/refinement half is timed, so the ratio is the
    // refiner speedup itself (the issue's acceptance bar is >= 2x on
    // grid2d(256,256)).
    let big_grid = generators::grid2d(256, 256);
    let (big_rmat, _) = largest_component(&generators::rmat(13, 8, 0.57, 0.19, 0.19, 7));
    for (gname, g) in [("grid-256x256", &big_grid), ("rmat-13", &big_rmat)] {
        let group = format!("fm-refine/{gname}");
        let h = coarsen(&policy, g, &CoarsenOptions::default());
        let cfg = FmConfig::default();
        let full = microbench(&group, "full-scan", RUNS, || {
            fm_uncoarsen_frac_full_scan(&h, &cfg, 0.5, 42)
        });
        let boundary = microbench(&group, "boundary", RUNS, || {
            fm_uncoarsen_frac(&h, &cfg, 0.5, 42)
        });
        println!("{group}: full-scan / boundary = {:.2}x", full / boundary);
    }
}

//! Criterion micro-bench for the partitioners (Tables V/VI): FM + HEC,
//! spectral + HEC, and the Metis-like baselines on one regular and one
//! skewed graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlcg_coarsen::CoarsenOptions;
use mlcg_graph::cc::largest_component;
use mlcg_graph::generators;
use mlcg_par::ExecPolicy;
use mlcg_partition::{fm_bisect, metis_like, mtmetis_like, spectral_bisect, FmConfig, SpectralConfig};

fn bench_partition(c: &mut Criterion) {
    let regular = generators::grid2d(90, 90);
    let (skewed, _) = largest_component(&generators::rmat(12, 8, 0.57, 0.19, 0.19, 7));
    let policy = ExecPolicy::host();
    // Smoke-scale caps so the spectral bench finishes quickly.
    let spectral_cfg = SpectralConfig { tol: 1e-10, coarse_max_iters: 1000, refine_max_iters: 100 };

    for (gname, g) in [("grid-90x90", &regular), ("rmat-12", &skewed)] {
        let mut group = c.benchmark_group(format!("partition/{gname}"));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter("fm+hec"), g, |b, g| {
            b.iter(|| fm_bisect(&policy, g, &CoarsenOptions::default(), &FmConfig::default(), 42));
        });
        group.bench_with_input(BenchmarkId::from_parameter("spectral+hec"), g, |b, g| {
            b.iter(|| spectral_bisect(&policy, g, &CoarsenOptions::default(), &spectral_cfg, 42));
        });
        group.bench_with_input(BenchmarkId::from_parameter("metis-like"), g, |b, g| {
            b.iter(|| metis_like(g, 42));
        });
        group.bench_with_input(BenchmarkId::from_parameter("mtmetis-like"), g, |b, g| {
            b.iter(|| mtmetis_like(&policy, g, 42));
        });
        group.finish();
    }
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);

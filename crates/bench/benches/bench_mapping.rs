//! Criterion micro-bench for the mapping phase (Table IV's time column):
//! every coarsening algorithm on one regular and one skewed graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlcg_coarsen::{find_mapping, MapMethod};
use mlcg_graph::cc::largest_component;
use mlcg_graph::generators;
use mlcg_par::ExecPolicy;

fn bench_mapping(c: &mut Criterion) {
    let regular = generators::grid2d(120, 120);
    let (skewed, _) = largest_component(&generators::rmat(13, 10, 0.57, 0.19, 0.19, 7));
    let policy = ExecPolicy::host();

    for (gname, g) in [("grid-120x120", &regular), ("rmat-13", &skewed)] {
        let mut group = c.benchmark_group(format!("mapping/{gname}"));
        group.sample_size(10);
        for method in [
            MapMethod::Hec,
            MapMethod::Hec2,
            MapMethod::Hec3,
            MapMethod::Hem,
            MapMethod::MtMetis,
            MapMethod::Gosh,
            MapMethod::GoshHec,
            MapMethod::Mis2,
            MapMethod::Suitor,
            MapMethod::SeqHec,
        ] {
            group.bench_with_input(BenchmarkId::from_parameter(method.name()), g, |b, g| {
                b.iter(|| find_mapping(&policy, g, method, 42));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);

//! Micro-bench for the mapping phase (Table IV's time column): every
//! coarsening algorithm on one regular and one skewed graph.
//!
//! Plain `fn main()` harness:
//! `cargo bench -p mlcg-bench --bench bench_mapping`.

use mlcg_bench::harness::microbench;
use mlcg_coarsen::{find_mapping, MapMethod};
use mlcg_graph::cc::largest_component;
use mlcg_graph::generators;
use mlcg_par::ExecPolicy;

const RUNS: usize = 10;

fn main() {
    let regular = generators::grid2d(120, 120);
    let (skewed, _) = largest_component(&generators::rmat(13, 10, 0.57, 0.19, 0.19, 7));
    let policy = ExecPolicy::host();

    for (gname, g) in [("grid-120x120", &regular), ("rmat-13", &skewed)] {
        let group = format!("mapping/{gname}");
        for method in [
            MapMethod::Hec,
            MapMethod::Hec2,
            MapMethod::Hec3,
            MapMethod::Hem,
            MapMethod::MtMetis,
            MapMethod::Gosh,
            MapMethod::GoshHec,
            MapMethod::Mis2,
            MapMethod::Suitor,
            MapMethod::SeqHec,
        ] {
            microbench(&group, method.name(), RUNS, || {
                find_mapping(&policy, g, method, 42)
            });
        }
    }
}

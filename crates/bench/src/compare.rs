//! Baseline comparison for `BENCH_*.json` results — the bench regression
//! gate behind `repro <exp> --baseline FILE [--noise X]`.
//!
//! The workspace is dependency-free, so this module carries a minimal
//! recursive-descent JSON parser (objects, arrays, strings, numbers,
//! booleans, null — enough for the hand-rolled bench result files) plus
//! the comparison rule: a graph's timing regresses when
//! `current > baseline * (1 + noise)`. Cut changes are reported but do
//! not gate, since quality is covered by the deterministic test suite.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escape sequences decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a JSON document. Rejects trailing non-whitespace.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member of an object (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Elements of an array (empty for non-arrays).
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            _ => &[],
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Descend a `/`-separated path of object keys.
    pub fn path(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for seg in path.split('/') {
            cur = cur.get(seg)?;
        }
        Some(cur)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unmodified).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| (b & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8 in string")?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| {
            b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-'
        }) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

/// One per-graph, per-variant, per-metric comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct Delta {
    /// Graph name.
    pub graph: String,
    /// Which variant (`bench-fm`: `full_scan` / `boundary`;
    /// `bench-parref`: `seq_boundary` / `par_coarse`), discovered from
    /// the baseline entry rather than hardcoded.
    pub variant: String,
    /// Which member of the variant object is being gated —
    /// `refine_seconds` / `seconds` for wall time, `peak_bytes` /
    /// `bytes_per_edge` / `aux_bytes_per_edge` for memory.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Whether this exceeded the noise threshold.
    pub regressed: bool,
}

impl Delta {
    /// Relative change (`+0.12` = 12 % worse than baseline).
    pub fn rel(&self) -> f64 {
        if self.baseline > 0.0 {
            self.current / self.baseline - 1.0
        } else {
            0.0
        }
    }

    fn fmt_value(&self, v: f64) -> String {
        if self.metric.ends_with("seconds") {
            format!("{v:.4}s")
        } else if self.metric == "peak_bytes" {
            format!("{:.2}MiB", v / (1024.0 * 1024.0))
        } else {
            format!("{v:.2}")
        }
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}: {} -> {} ({:+.1}%){}",
            self.graph,
            self.variant,
            self.metric,
            self.fmt_value(self.baseline),
            self.fmt_value(self.current),
            self.rel() * 100.0,
            if self.regressed { "  REGRESSION" } else { "" }
        )
    }
}

/// Outcome of a baseline comparison.
#[derive(Clone, Debug, Default)]
pub struct CompareOutcome {
    /// Every timing pair found in both files.
    pub deltas: Vec<Delta>,
    /// Graphs present in the baseline but missing from the current run
    /// (counted as failures: a silently dropped graph is not a pass).
    pub missing: Vec<String>,
}

impl CompareOutcome {
    /// True when nothing regressed and no baseline graph went missing.
    pub fn passed(&self) -> bool {
        self.missing.is_empty() && self.deltas.iter().all(|d| !d.regressed)
    }
}

/// Compare two `BENCH_*.json` documents. `noise` is the relative
/// threshold: a timing regresses when
/// `current > baseline * (1 + noise)`.
///
/// Timing variants are discovered from each baseline graph entry: every
/// member whose value is an object carrying a `refine_seconds` or
/// `seconds` number is a variant, so the same gate serves `bench-fm`
/// (`full_scan` / `boundary`), `bench-parref`
/// (`seq_boundary` / `par_coarse`), and `bench-ingest`
/// (`inmem` / `streamed` / `spmv_*`) without a hardcoded list.
///
/// Memory members gate alongside the timing: when a baseline variant also
/// carries `peak_bytes`, `bytes_per_edge`, or `aux_bytes_per_edge`, the
/// current run must report them too and stay within the same noise
/// threshold — a heap-footprint regression fails the gate exactly like a
/// slowdown.
pub fn compare_bench_fm(
    baseline: &Json,
    current: &Json,
    noise: f64,
) -> Result<CompareOutcome, String> {
    let base_graphs = baseline
        .get("graphs")
        .ok_or("baseline has no \"graphs\" array")?;
    let cur_graphs = current
        .get("graphs")
        .ok_or("current result has no \"graphs\" array")?;
    let mut out = CompareOutcome::default();
    for bg in base_graphs.items() {
        let name = bg
            .get("name")
            .and_then(Json::as_str)
            .ok_or("baseline graph entry without a name")?;
        let Some(cg) = cur_graphs
            .items()
            .iter()
            .find(|g| g.get("name").and_then(Json::as_str) == Some(name))
        else {
            out.missing.push(name.to_string());
            continue;
        };
        let Json::Obj(members) = bg else {
            return Err(format!("{name}: baseline graph entry is not an object"));
        };
        let mut found = false;
        for (variant, bv) in members {
            let Some((key, b)) = timing_member(bv) else {
                continue; // not a timing variant (name / n / m / speedup)
            };
            found = true;
            let mut gated: Vec<(&str, f64)> = vec![(key, b)];
            for mem_key in MEMORY_METRICS {
                if let Some(mb) = bv.get(mem_key).and_then(Json::as_f64) {
                    gated.push((mem_key, mb));
                }
            }
            for (key, b) in gated {
                let Some(c) = cg
                    .path(variant)
                    .and_then(|v| v.get(key))
                    .and_then(Json::as_f64)
                else {
                    return Err(format!(
                        "{name}/{variant}: missing {key} in current results"
                    ));
                };
                out.deltas.push(Delta {
                    graph: name.to_string(),
                    variant: variant.clone(),
                    metric: key.to_string(),
                    baseline: b,
                    current: c,
                    regressed: c > b * (1.0 + noise),
                });
            }
        }
        if !found {
            return Err(format!("{name}: baseline entry has no timing variants"));
        }
    }
    Ok(out)
}

/// Memory members gated alongside a variant's timing when the baseline
/// records them.
const MEMORY_METRICS: [&str; 4] = [
    "peak_bytes",
    "bytes_per_edge",
    "bytes_per_vertex",
    "aux_bytes_per_edge",
];

/// The timing number inside a variant object, with the key it was found
/// under (`refine_seconds` for the refinement benches, `seconds` for
/// `bench-ingest`).
fn timing_member(v: &Json) -> Option<(&'static str, f64)> {
    for key in ["refine_seconds", "seconds"] {
        if let Some(x) = v.get(key).and_then(Json::as_f64) {
            return Some((key, x));
        }
    }
    None
}

/// Load a baseline file, compare against the current results document,
/// print the per-graph deltas, and return the process exit code (0 pass,
/// 1 regression / missing graph, 2 unreadable input).
pub fn run_baseline_gate(baseline_path: &str, current_json: &str, noise: f64) -> i32 {
    let base_text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("baseline gate: cannot read {baseline_path}: {e}");
            return 2;
        }
    };
    let (base, cur) = match (Json::parse(&base_text), Json::parse(current_json)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) => {
            eprintln!("baseline gate: {baseline_path} is not valid JSON: {e}");
            return 2;
        }
        (_, Err(e)) => {
            eprintln!("baseline gate: current results are not valid JSON: {e}");
            return 2;
        }
    };
    let outcome = match compare_bench_fm(&base, &cur, noise) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("baseline gate: {e}");
            return 2;
        }
    };
    println!(
        "baseline gate vs {baseline_path} (noise threshold {:.0}%):",
        noise * 100.0
    );
    for d in &outcome.deltas {
        println!("  {d}");
    }
    for m in &outcome.missing {
        println!("  {m}: MISSING from current results");
    }
    if outcome.passed() {
        println!("baseline gate: PASS");
        0
    } else {
        let n = outcome.deltas.iter().filter(|d| d.regressed).count() + outcome.missing.len();
        println!("baseline gate: FAIL ({n} regression(s))");
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_strings_and_nesting() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(
            Json::parse(r#""a\nbA""#).unwrap(),
            Json::Str("a\nbA".into())
        );
        let v = Json::parse(r#"{"a": [1, {"b": "x"}], "c": false}"#).unwrap();
        assert_eq!(v.path("a").unwrap().items().len(), 2);
        assert_eq!(
            v.path("a").unwrap().items()[1].path("b").unwrap().as_str(),
            Some("x")
        );
        assert_eq!(v.get("c"), Some(&Json::Bool(false)));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}, extra").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
    }

    fn doc(full: f64, boundary: f64) -> Json {
        Json::parse(&format!(
            r#"{{"experiment": "bench-fm", "graphs": [
                {{"name": "g1", "n": 10, "m": 20,
                  "full_scan": {{"cut": 5, "refine_seconds": {full}}},
                  "boundary": {{"cut": 5, "refine_seconds": {boundary}}},
                  "speedup": 1.0}}
            ]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn compare_passes_within_noise_and_fails_beyond() {
        let base = doc(0.100, 0.050);
        let same = compare_bench_fm(&base, &doc(0.110, 0.055), 0.25).unwrap();
        assert!(same.passed());
        assert_eq!(same.deltas.len(), 2);

        let slow = compare_bench_fm(&base, &doc(0.200, 0.050), 0.25).unwrap();
        assert!(!slow.passed());
        let reg: Vec<_> = slow.deltas.iter().filter(|d| d.regressed).collect();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].variant, "full_scan");
        assert!((reg[0].rel() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn variants_are_discovered_not_hardcoded() {
        // bench-parref names its variants seq_boundary / par_coarse; the
        // gate must pick them up from the baseline entry.
        let doc = |seq: f64, par: f64| {
            Json::parse(&format!(
                r#"{{"experiment": "bench-parref", "graphs": [
                    {{"name": "g1", "n": 10, "m": 20,
                      "seq_boundary": {{"cut": 5, "refine_seconds": {seq}}},
                      "par_coarse": {{"cut": 5, "refine_seconds": {par}}},
                      "speedup": 1.0}}
                ]}}"#
            ))
            .unwrap()
        };
        let base = doc(0.100, 0.050);
        let ok = compare_bench_fm(&base, &doc(0.100, 0.050), 0.25).unwrap();
        assert!(ok.passed());
        let variants: Vec<&str> = ok.deltas.iter().map(|d| d.variant.as_str()).collect();
        assert_eq!(variants, vec!["par_coarse", "seq_boundary"]);

        let slow = compare_bench_fm(&base, &doc(0.100, 0.500), 0.25).unwrap();
        assert!(!slow.passed());
        let reg: Vec<_> = slow.deltas.iter().filter(|d| d.regressed).collect();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].variant, "par_coarse");
    }

    #[test]
    fn plain_seconds_key_is_a_timing_variant() {
        // bench-ingest variants carry "seconds" (build/SpMV wall time)
        // instead of "refine_seconds"; the gate must treat them the same.
        let doc = |inmem: f64, streamed: f64| {
            Json::parse(&format!(
                r#"{{"experiment": "bench-ingest", "graphs": [
                    {{"name": "g1", "n": 10, "m": 20,
                      "inmem": {{"seconds": {inmem}, "aux_bytes_per_edge": 16.0}},
                      "streamed": {{"seconds": {streamed}, "aux_bytes_per_edge": 0.5}}}}
                ]}}"#
            ))
            .unwrap()
        };
        let base = doc(0.100, 0.120);
        let ok = compare_bench_fm(&base, &doc(0.105, 0.125), 0.25).unwrap();
        assert!(ok.passed());
        // Two timing deltas plus two aux_bytes_per_edge memory deltas.
        assert_eq!(ok.deltas.len(), 4);

        let slow = compare_bench_fm(&base, &doc(0.100, 0.500), 0.25).unwrap();
        assert!(!slow.passed());
        let reg: Vec<_> = slow.deltas.iter().filter(|d| d.regressed).collect();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].variant, "streamed");
        assert_eq!(reg[0].metric, "seconds");
    }

    #[test]
    fn memory_regression_fails_the_gate() {
        // A variant whose timing is unchanged but whose peak heap grew
        // beyond the noise threshold must fail exactly like a slowdown.
        let doc = |peak: u64, bpe: f64| {
            Json::parse(&format!(
                r#"{{"experiment": "bench-ingest", "graphs": [
                    {{"name": "g1", "n": 10, "m": 20,
                      "streamed": {{"seconds": 0.100, "peak_bytes": {peak},
                                    "bytes_per_edge": {bpe}}}}}
                ]}}"#
            ))
            .unwrap()
        };
        let base = doc(1_000_000, 50.0);
        let same = compare_bench_fm(&base, &doc(1_050_000, 52.5), 0.25).unwrap();
        assert!(same.passed());
        assert_eq!(same.deltas.len(), 3, "seconds + two memory metrics");

        let bloated = compare_bench_fm(&base, &doc(2_000_000, 100.0), 0.25).unwrap();
        assert!(!bloated.passed());
        let reg: Vec<_> = bloated.deltas.iter().filter(|d| d.regressed).collect();
        assert_eq!(reg.len(), 2);
        assert!(reg.iter().any(|d| d.metric == "peak_bytes"));
        assert!(reg.iter().any(|d| d.metric == "bytes_per_edge"));

        // Shrinking memory never regresses.
        let lean = compare_bench_fm(&base, &doc(500_000, 25.0), 0.0).unwrap();
        assert!(lean.passed());

        // A baseline with memory members requires the current run to
        // report them — silently dropping telemetry is not a pass.
        let no_mem = Json::parse(
            r#"{"graphs": [{"name": "g1",
                "streamed": {"seconds": 0.100}}]}"#,
        )
        .unwrap();
        assert!(compare_bench_fm(&base, &no_mem, 0.25).is_err());
    }

    #[test]
    fn memory_regression_exit_code_is_one() {
        let dir = std::env::temp_dir().join("mlcg-compare-mem-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("base.json");
        std::fs::write(
            &path,
            r#"{"graphs": [{"name": "g1",
                "streamed": {"seconds": 0.1, "peak_bytes": 1000000}}]}"#,
        )
        .unwrap();
        let p = path.to_str().unwrap();
        let cur_bloated = r#"{"graphs": [{"name": "g1",
            "streamed": {"seconds": 0.1, "peak_bytes": 9000000}}]}"#;
        assert_eq!(run_baseline_gate(p, cur_bloated, 0.25), 1);
    }

    #[test]
    fn faster_results_never_regress() {
        let base = doc(0.100, 0.050);
        let fast = compare_bench_fm(&base, &doc(0.010, 0.005), 0.0).unwrap();
        assert!(fast.passed());
    }

    #[test]
    fn missing_graph_fails_the_gate() {
        let base = doc(0.1, 0.1);
        let empty = Json::parse(r#"{"graphs": []}"#).unwrap();
        let out = compare_bench_fm(&base, &empty, 0.25).unwrap();
        assert!(!out.passed());
        assert_eq!(out.missing, vec!["g1".to_string()]);
    }

    #[test]
    fn gate_exit_codes() {
        let dir = std::env::temp_dir().join("mlcg-compare-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("base.json");
        std::fs::write(
            &path,
            r#"{"graphs": [{"name": "g1",
                "full_scan": {"cut": 1, "refine_seconds": 0.1},
                "boundary": {"cut": 1, "refine_seconds": 0.1}}]}"#,
        )
        .unwrap();
        let p = path.to_str().unwrap();
        let cur_ok = r#"{"graphs": [{"name": "g1",
            "full_scan": {"cut": 1, "refine_seconds": 0.1},
            "boundary": {"cut": 1, "refine_seconds": 0.1}}]}"#;
        let cur_slow = r#"{"graphs": [{"name": "g1",
            "full_scan": {"cut": 1, "refine_seconds": 9.0},
            "boundary": {"cut": 1, "refine_seconds": 0.1}}]}"#;
        assert_eq!(run_baseline_gate(p, cur_ok, 0.25), 0);
        assert_eq!(run_baseline_gate(p, cur_slow, 0.25), 1);
        assert_eq!(run_baseline_gate("/nonexistent/base.json", cur_ok, 0.25), 2);
        assert_eq!(run_baseline_gate(p, "not json", 0.25), 2);
    }
}

//! The reproduction driver: regenerate any table or figure of the paper.
//!
//! ```text
//! cargo run --release -p mlcg-bench --bin repro -- table2 --scale 0 --runs 3
//! cargo run --release -p mlcg-bench --bin repro -- all --fast
//! ```

use mlcg_bench::{exp, Ctx};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(name) = args.first() else {
        eprintln!(
            "usage: repro <experiment> [--scale k] [--runs r] [--seed s] [--fast] [--quick] \
             [--trace] [--trace-out FILE] [--baseline BENCH_x.json] [--noise x]"
        );
        eprintln!("experiments: {} all", exp::ALL.join(" "));
        std::process::exit(2);
    };
    let ctx = Ctx::from_args(&args[1..]);
    eprintln!(
        "repro {name}: scale={} runs={} seed={} fast={} pool-workers={} spin-us={} heap-peak={}",
        ctx.scale,
        ctx.runs,
        ctx.seed,
        ctx.fast,
        // Configured size, not `global().workers()`: the banner must not be
        // the thing that spawns the pool.
        mlcg_par::pool::configured_workers(),
        mlcg_par::pool::spin_us(),
        // Process-global high-water at banner time (startup allocations);
        // the exit line below reports the peak over the whole experiment.
        mlcg_par::mem::fmt_bytes(mlcg_par::mem::peak_bytes() as u64)
    );
    match exp::run(name, &ctx) {
        Some(0) => {
            eprintln!(
                "repro {name}: heap-peak={} live={} allocs={}",
                mlcg_par::mem::fmt_bytes(mlcg_par::mem::peak_bytes() as u64),
                mlcg_par::mem::fmt_bytes(mlcg_par::mem::live_bytes() as u64),
                mlcg_par::mem::alloc_count()
            );
        }
        Some(code) => std::process::exit(code),
        None => {
            eprintln!(
                "unknown experiment '{name}'. known: {} all",
                exp::ALL.join(" ")
            );
            std::process::exit(2);
        }
    }
}

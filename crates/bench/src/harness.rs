//! Shared harness utilities: run context, corpus caching, timing,
//! table formatting.

use mlcg_graph::suite::{self, NamedGraph};
use mlcg_par::timer::{geomean, median};
use mlcg_par::{ExecPolicy, Timer, TraceCollector, TraceConfig, TraceReport};

/// Options common to every experiment.
#[derive(Clone, Debug)]
pub struct Ctx {
    /// Corpus scale: 0 is the laptop default, each +1 doubles vertex counts.
    pub scale: u32,
    /// Timed repetitions; medians are reported (the paper uses 10 runs).
    pub runs: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Lower the power-iteration caps (smoke-test mode).
    pub fast: bool,
    /// Shrink benchmark suites for CI smoke runs (`bench-fm`).
    pub quick: bool,
    /// Collect and emit pipeline traces (spans/counters/gauges) as
    /// JSON-lines plus a human-readable tree.
    pub trace: bool,
    /// Write each traced run as a Chrome trace-event JSON file (implies
    /// trace collection). `MLCG_TRACE_OUT` supplies a default.
    pub trace_out: Option<String>,
    /// Baseline `BENCH_*.json` to compare timing results against; a
    /// regression makes the experiment exit nonzero.
    pub baseline: Option<String>,
    /// Relative noise threshold for baseline comparison: current timings
    /// beyond `baseline * (1 + noise)` count as regressions.
    pub noise: f64,
    /// Traces emitted so far (derives distinct `--trace-out` file names
    /// when one experiment emits several reports). Leave at the default.
    pub emitted: std::cell::Cell<usize>,
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx {
            scale: 0,
            runs: 3,
            seed: 42,
            fast: false,
            quick: false,
            trace: false,
            trace_out: None,
            baseline: None,
            noise: 0.25,
            emitted: std::cell::Cell::new(0),
        }
    }
}

impl Ctx {
    /// Parse `--scale/--runs/--seed/--fast/--quick` style arguments.
    pub fn from_args(args: &[String]) -> Ctx {
        let mut ctx = Ctx::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => ctx.scale = it.next().and_then(|v| v.parse().ok()).unwrap_or(0),
                "--runs" => ctx.runs = it.next().and_then(|v| v.parse().ok()).unwrap_or(3).max(1),
                "--seed" => ctx.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(42),
                "--fast" => ctx.fast = true,
                "--quick" => ctx.quick = true,
                "--trace" => ctx.trace = true,
                "--trace-out" => ctx.trace_out = it.next().cloned(),
                "--baseline" => ctx.baseline = it.next().cloned(),
                "--noise" => {
                    ctx.noise = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(ctx.noise)
                        .max(0.0)
                }
                other => eprintln!("warning: ignoring unknown option {other}"),
            }
        }
        ctx
    }

    /// The Chrome-trace output path: `--trace-out`, falling back to the
    /// `MLCG_TRACE_OUT` environment variable.
    pub fn trace_out(&self) -> Option<String> {
        self.trace_out.clone().or_else(|| {
            std::env::var("MLCG_TRACE_OUT")
                .ok()
                .filter(|s| !s.is_empty())
        })
    }

    /// Generate the full 20-graph corpus at this context's scale.
    pub fn corpus(&self) -> Vec<NamedGraph> {
        eprintln!("generating corpus (scale {}) ...", self.scale);
        let t = Timer::start();
        let corpus = suite::suite(self.scale, self.seed);
        eprintln!("corpus ready in {:.1}s", t.seconds());
        corpus
    }

    /// The "GPU" execution policy of the reproduction (device-sim).
    pub fn device(&self) -> ExecPolicy {
        ExecPolicy::device_sim()
    }

    /// The multicore execution policy.
    pub fn host(&self) -> ExecPolicy {
        ExecPolicy::host()
    }

    /// A trace collector honoring `--trace` (and `MLCG_TRACE` /
    /// `MLCG_VALIDATE` from the environment). With neither the flag nor
    /// the env vars set, this is a disabled collector with zero recording
    /// overhead.
    pub fn trace_collector(&self) -> TraceCollector {
        let mut cfg = TraceConfig::from_env();
        cfg.enabled |= self.trace || self.trace_out().is_some();
        TraceCollector::with_config(cfg)
    }

    /// Whether trace output is in effect, via `--trace`, `--trace-out`,
    /// `MLCG_TRACE=1`, `MLCG_TRACE_OUT`, or `MLCG_VALIDATE=1` (audit
    /// results are reported through the same channel, so validation alone
    /// also turns emission on).
    pub fn trace_enabled(&self) -> bool {
        let env = TraceConfig::from_env();
        self.trace || self.trace_out().is_some() || env.enabled || env.validate
    }

    /// Emit a non-empty trace report: JSON-lines on stdout (prefixed by a
    /// `# trace <label>` comment line) followed by the aggregated span
    /// tree. With `--trace-out FILE` (or `MLCG_TRACE_OUT`), additionally
    /// writes the report as Chrome trace-event JSON — the first report of
    /// the experiment goes to `FILE` verbatim; subsequent reports get
    /// `-2`, `-3`, ... inserted before the extension so nothing is
    /// clobbered. No output when the report is empty or tracing is off.
    pub fn emit_trace(&self, label: &str, report: &TraceReport) {
        if !self.trace_enabled() || report.is_empty() {
            return;
        }
        println!("# trace {label}");
        print!("{}", report.to_jsonl_string());
        println!("{}", report.render_tree());
        if let Some(base) = self.trace_out() {
            let k = self.emitted.get() + 1;
            self.emitted.set(k);
            let path = if k == 1 {
                base
            } else {
                match base.rsplit_once('.') {
                    Some((stem, ext)) => format!("{stem}-{k}.{ext}"),
                    None => format!("{base}-{k}"),
                }
            };
            match std::fs::write(&path, report.to_chrome_trace()) {
                Ok(()) => println!("# chrome trace ({label}) written to {path}"),
                Err(e) => eprintln!("warning: could not write chrome trace {path}: {e}"),
            }
        }
    }
}

/// Run `f` `runs` times and return `(last_result, median_seconds)`.
pub fn median_time<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    assert!(runs >= 1);
    let mut samples = Vec::with_capacity(runs);
    let mut out = None;
    for _ in 0..runs {
        let t = Timer::start();
        out = Some(f());
        samples.push(t.seconds());
    }
    (out.unwrap(), median(&mut samples))
}

/// Geometric mean helper re-exported for the experiment modules.
pub fn geo(xs: &[f64]) -> f64 {
    geomean(xs)
}

/// Micro-bench runner for the plain-`main` bench binaries: one warm-up
/// call, then `runs` timed iterations; prints and returns the median
/// seconds.
pub fn microbench<T>(group: &str, name: &str, runs: usize, mut f: impl FnMut() -> T) -> f64 {
    let _ = f(); // warm-up (pool spin-up, allocator, caches)
    let (_, med) = median_time(runs.max(1), &mut f);
    println!("{group}/{name}: {:.3} ms (median of {runs})", med * 1e3);
    med
}

/// Print a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Print a markdown-style header + separator.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Format seconds with 3 significant decimals (as the paper's tables do).
pub fn secs(s: f64) -> String {
    format!("{s:.3}")
}

/// Format a ratio with two decimals; `NaN` prints as `OOM`-style dash.
pub fn ratio(r: f64) -> String {
    if r.is_finite() {
        format!("{r:.2}")
    } else {
        "-".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_parses_args() {
        let args: Vec<String> = ["--scale", "2", "--runs", "5", "--seed", "7", "--fast"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let ctx = Ctx::from_args(&args);
        assert_eq!(ctx.scale, 2);
        assert_eq!(ctx.runs, 5);
        assert_eq!(ctx.seed, 7);
        assert!(ctx.fast);
    }

    #[test]
    fn ctx_defaults() {
        let ctx = Ctx::from_args(&[]);
        assert_eq!(ctx.scale, 0);
        assert_eq!(ctx.runs, 3);
        assert!(!ctx.fast);
    }

    #[test]
    fn median_time_returns_result() {
        let (v, t) = median_time(3, || 21 * 2);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(secs(1.23456), "1.235");
        assert_eq!(ratio(2.5), "2.50");
        assert_eq!(ratio(f64::NAN), "-");
        assert_eq!(ratio(f64::INFINITY), "-");
    }
}

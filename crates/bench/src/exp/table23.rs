//! Tables II and III — HEC coarsening performance under the device-sim
//! ("GPU") and host ("32-core CPU") policies: total coarsening time with
//! sort-based construction, the fraction spent constructing, and the
//! construction-time ratios of the hashing and SpGEMM alternatives.
//!
//! The paper's footnote comparisons are reproduced too: HEC vs HEC2/HEC3
//! time and level ratios, and the fraction of vertices resolved within two
//! passes of Algorithm 4.

use crate::harness::{geo, header, median_time, ratio, row, secs, Ctx};
use mlcg_coarsen::{coarsen, CoarsenOptions, ConstructMethod, ConstructOptions, MapMethod};
use mlcg_graph::suite::Group;

fn coarsen_opts(method: MapMethod, cm: ConstructMethod, seed: u64) -> CoarsenOptions {
    CoarsenOptions {
        method,
        construction: ConstructOptions::with_method(cm),
        seed,
        ..Default::default()
    }
}

/// Run Table II (`device = true`) or Table III (`device = false`).
pub fn run(ctx: &Ctx, device: bool) {
    let policy = if device { ctx.device() } else { ctx.host() };
    let corpus = ctx.corpus();
    println!(
        "Table {}: HEC coarsening on the {} policy ({policy}), median of {} runs",
        if device { "II" } else { "III" },
        if device { "device-sim" } else { "host" },
        ctx.runs,
    );
    header(&["Graph", "t_c (s)", "% GrCo", "Hashing", "SpGEMM"]);

    let mut group_rows: Vec<(Group, f64, f64, f64)> = Vec::new();
    let mut hec_vs: Vec<(f64, f64, f64, f64)> = Vec::new(); // (t2/t, t3/t, lvl2/lvl, lvl3/lvl)
    let mut two_pass_fracs: Vec<f64> = Vec::new();

    for ng in &corpus {
        let g = &ng.graph;
        let run_with = |cm: ConstructMethod| {
            median_time(ctx.runs, || {
                coarsen(&policy, g, &coarsen_opts(MapMethod::Hec, cm, ctx.seed))
            })
        };
        let (h_sort, t_sort) = run_with(ConstructMethod::Sort);
        let (_h_hash, _) = run_with(ConstructMethod::Hash);
        let (_h_spg, _) = run_with(ConstructMethod::Spgemm);
        // Construction-time ratios use the driver's per-phase timers from
        // the *last* run of each method.
        let con_sort: f64 = h_sort.stats.construct_seconds.iter().sum();
        let con_hash: f64 = _h_hash.stats.construct_seconds.iter().sum();
        let con_spg: f64 = _h_spg.stats.construct_seconds.iter().sum();
        let grco = h_sort.stats.construction_fraction() * 100.0;
        let r_hash = con_hash / con_sort;
        let r_spg = con_spg / con_sort;
        row(&[
            ng.name.to_string(),
            secs(t_sort),
            format!("{grco:.0}"),
            ratio(r_hash),
            ratio(r_spg),
        ]);
        group_rows.push((ng.group, grco, r_hash, r_spg));

        if ctx.trace_enabled() {
            let mut opts = coarsen_opts(MapMethod::Hec, ConstructMethod::Sort, ctx.seed);
            opts.trace = ctx.trace_collector();
            let h = coarsen(&policy, g, &opts);
            ctx.emit_trace(&format!("coarsen/{}/{policy}", ng.name), &h.trace);
        }

        // HEC2 / HEC3 comparison (paper §IV.A text).
        let (h2, t2) = median_time(ctx.runs, || {
            coarsen(
                &policy,
                g,
                &coarsen_opts(MapMethod::Hec2, ConstructMethod::Sort, ctx.seed),
            )
        });
        let (h3, t3) = median_time(ctx.runs, || {
            coarsen(
                &policy,
                g,
                &coarsen_opts(MapMethod::Hec3, ConstructMethod::Sort, ctx.seed),
            )
        });
        hec_vs.push((
            t2 / t_sort,
            t3 / t_sort,
            h2.num_levels() as f64 / h_sort.num_levels().max(1) as f64,
            h3.num_levels() as f64 / h_sort.num_levels().max(1) as f64,
        ));
        if let Some(level) = h_sort.levels.first() {
            let total: usize = level.map_stats.resolved_per_pass.iter().sum();
            let first2: usize = level.map_stats.resolved_per_pass.iter().take(2).sum();
            if total > 0 {
                two_pass_fracs.push(first2 as f64 / total as f64);
            }
        }
    }
    for (group, label) in [(Group::Regular, "regular"), (Group::Skewed, "skewed")] {
        let rows: Vec<&(Group, f64, f64, f64)> =
            group_rows.iter().filter(|r| r.0 == group).collect();
        if rows.is_empty() {
            continue;
        }
        row(&[
            format!("GeoMean ({label})"),
            String::new(),
            format!("{:.0}", geo(&rows.iter().map(|r| r.1).collect::<Vec<_>>())),
            ratio(geo(&rows.iter().map(|r| r.2).collect::<Vec<_>>())),
            ratio(geo(&rows.iter().map(|r| r.3).collect::<Vec<_>>())),
        ]);
    }
    println!();
    println!(
        "HEC variants (geomean over corpus): t(HEC2)/t(HEC) = {:.2}, t(HEC3)/t(HEC) = {:.2}, \
         levels(HEC2)/levels(HEC) = {:.2}, levels(HEC3)/levels(HEC) = {:.2}",
        geo(&hec_vs.iter().map(|r| r.0).collect::<Vec<_>>()),
        geo(&hec_vs.iter().map(|r| r.1).collect::<Vec<_>>()),
        geo(&hec_vs.iter().map(|r| r.2).collect::<Vec<_>>()),
        geo(&hec_vs.iter().map(|r| r.3).collect::<Vec<_>>()),
    );
    println!(
        "Algorithm 4 first-level vertices resolved within two passes: {:.1}% (paper: 99.4%)",
        100.0 * two_pass_fracs.iter().sum::<f64>() / two_pass_fracs.len().max(1) as f64
    );
}

//! `bench-coarsen` — coarse-graph construction benchmark and gate.
//!
//! The suite is split into a *regular* half (grid, path — uniform degrees,
//! the skew optimization stays off) and a *skewed* half (rmat, star — hub
//! aggregates, the degree-dedup optimization engages and the scatter
//! sharding has real work to do). For each graph and each of the five
//! [`ConstructMethod`]s this times one coarse-graph construction on the
//! host policy (median of `--runs`), plus a `hierarchy` variant that runs
//! the full multilevel driver and reports the summed per-level
//! construction seconds — the number the level-reused
//! `ConstructWorkspace` improves.
//!
//! Peak heap comes from an untimed [`mlcg_par::mem::measure`] run under
//! the *serial* policy: allocator scopes attribute on the allocating
//! thread only, so the serial run captures the full construction envelope
//! (count arrays, scatter arrays, workspaces) deterministically, where a
//! host-policy run would silently drop worker-side allocations.
//!
//! Star graphs use a synthetic grouped-leaves mapping (hub alone, leaves
//! in groups of 8) rather than a HEC mapping: HEC collapses a star in one
//! step, while the grouped mapping produces the adversarial shape the
//! sharded scatter exists for — one coarse vertex receiving every entry.
//!
//! Results go to `target/repro/BENCH_coarsen.json`; `--baseline FILE`
//! gates every variant's `seconds` and `peak_bytes` like the other bench
//! gates.

use crate::harness::{header, median_time, row, Ctx};
use mlcg_coarsen::{
    coarsen, construct_coarse_graph, find_mapping, CoarsenOptions, ConstructMethod,
    ConstructOptions, MapMethod, Mapping,
};
use mlcg_graph::cc::largest_component;
use mlcg_graph::generators as gen;
use mlcg_graph::Csr;
use mlcg_par::{ExecPolicy, TraceCollector};
use std::path::PathBuf;

struct Variant {
    key: String,
    seconds: f64,
    peak_bytes: u64,
}

/// Floor for recorded timings: the gate is relative
/// (`current > baseline * (1 + noise)`), so a near-zero median in the
/// committed baseline would fail on any positive current value. 10 µs is
/// far below every real suite timing and far above timer noise.
const SECONDS_FLOOR: f64 = 1e-5;

struct Entry {
    name: String,
    class: &'static str, // "regular" | "skewed"
    n: usize,
    m: usize,
    variants: Vec<Variant>,
}

/// Leaves in groups of `group`, the hub alone: the coarse graph is again a
/// star, and aggregate 0 receives every scattered entry.
fn star_mapping(n: usize, group: usize) -> Mapping {
    let map: Vec<u32> = (0..n as u32)
        .map(|u| {
            if u == 0 {
                0
            } else {
                1 + (u - 1) / group as u32
            }
        })
        .collect();
    let n_coarse = (*map.iter().max().unwrap() + 1) as usize;
    Mapping { map, n_coarse }
}

fn suite(ctx: &Ctx) -> Vec<(String, &'static str, Csr)> {
    if ctx.quick {
        vec![
            ("grid2d-64x64".into(), "regular", gen::grid2d(64, 64)),
            ("path-4096".into(), "regular", gen::path(4096)),
            (
                "rmat-10".into(),
                "skewed",
                largest_component(&gen::rmat(10, 8, 0.57, 0.19, 0.19, ctx.seed)).0,
            ),
            ("star-8192".into(), "skewed", gen::star(8192)),
        ]
    } else {
        vec![
            ("grid2d-512x512".into(), "regular", gen::grid2d(512, 512)),
            ("path-65536".into(), "regular", gen::path(65536)),
            (
                "rmat-15".into(),
                "skewed",
                largest_component(&gen::rmat(15, 8, 0.57, 0.19, 0.19, ctx.seed)).0,
            ),
            ("star-262144".into(), "skewed", gen::star(262144)),
        ]
    }
}

/// Run the construction benchmark, write `BENCH_coarsen.json`, and (with
/// `--baseline FILE`) gate seconds and peak bytes against a committed
/// baseline. Returns the process exit code (nonzero on regression).
pub fn run(ctx: &Ctx) -> i32 {
    let host = ctx.host();
    let serial = ExecPolicy::serial();
    let mut entries = Vec::new();

    for (name, class, g) in suite(ctx) {
        let mapping = if name.starts_with("star") {
            star_mapping(g.n(), 8)
        } else {
            find_mapping(&serial, &g, MapMethod::SeqHec, ctx.seed).0
        };
        let mut variants = Vec::new();
        let mut reference: Option<Csr> = None;

        for method in ConstructMethod::ALL {
            let opts = ConstructOptions::with_method(method);
            // Warm-up (pool spin-up, page faults) doubles as the suite's
            // cross-method identity check.
            let warm = construct_coarse_graph(&host, &g, &mapping, &opts);
            match &reference {
                None => reference = Some(warm),
                Some(r) => assert_eq!(
                    &warm,
                    r,
                    "{name}: {} disagrees with {}",
                    method.name(),
                    ConstructMethod::ALL[0].name()
                ),
            }
            let (_, seconds) = median_time(ctx.runs, || {
                construct_coarse_graph(&host, &g, &mapping, &opts)
            });
            let seconds = seconds.max(SECONDS_FLOOR);
            // Untimed serial run for deterministic full-envelope heap
            // attribution (see module docs).
            let (_, mem) =
                mlcg_par::mem::measure(|| construct_coarse_graph(&serial, &g, &mapping, &opts));
            variants.push(Variant {
                key: method.name().to_string(),
                seconds,
                peak_bytes: mem.peak_bytes,
            });
        }

        // Full multilevel driver with the default construction: summed
        // per-level construction seconds — the workspace-reuse number.
        let copts = CoarsenOptions {
            seed: ctx.seed,
            trace: TraceCollector::disabled(),
            ..Default::default()
        };
        let _ = coarsen(&host, &g, &copts);
        let (h, _) = median_time(ctx.runs, || coarsen(&host, &g, &copts));
        let seconds: f64 = h
            .stats
            .construct_seconds
            .iter()
            .sum::<f64>()
            .max(SECONDS_FLOOR);
        let (_, mem) = mlcg_par::mem::measure(|| coarsen(&serial, &g, &copts));
        variants.push(Variant {
            key: "hierarchy".to_string(),
            seconds,
            peak_bytes: mem.peak_bytes,
        });

        entries.push(Entry {
            name,
            class,
            n: g.n(),
            m: g.m(),
            variants,
        });
    }

    header(&["graph", "class", "n", "m", "variant", "seconds", "peak"]);
    for e in &entries {
        for v in &e.variants {
            row(&[
                e.name.clone(),
                e.class.to_string(),
                e.n.to_string(),
                e.m.to_string(),
                v.key.clone(),
                format!("{:.5}", v.seconds),
                mlcg_par::mem::fmt_bytes(v.peak_bytes),
            ]);
        }
    }

    // Hand-rolled JSON (the workspace is dependency-free).
    let mut json = String::from("{\n");
    json.push_str("  \"experiment\": \"bench-coarsen\",\n");
    json.push_str(&format!("  \"quick\": {},\n", ctx.quick));
    json.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    json.push_str(&format!("  \"runs\": {},\n", ctx.runs));
    json.push_str("  \"graphs\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"class\": \"{}\", \"n\": {}, \"m\": {}",
            e.name, e.class, e.n, e.m
        ));
        for v in &e.variants {
            json.push_str(&format!(
                ", \"{}\": {{\"seconds\": {:.6}, \"peak_bytes\": {}, \"bytes_per_edge\": {:.2}}}",
                v.key,
                v.seconds,
                v.peak_bytes,
                v.peak_bytes as f64 / e.m.max(1) as f64
            ));
        }
        json.push_str(&format!(
            "}}{}\n",
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let dir = PathBuf::from("target/repro");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_coarsen.json");
    std::fs::write(&path, &json).unwrap();
    println!("bench-coarsen: results written to {}", path.display());

    match &ctx.baseline {
        Some(baseline) => crate::compare::run_baseline_gate(baseline, &json, ctx.noise),
        None => 0,
    }
}

//! `bench-map` — mapping-phase benchmark and gate.
//!
//! The suite is split into a *regular* half (grid, path — uniform degrees,
//! the HEC-family pass loop converges immediately) and a *hub-heavy* half
//! (rmat, star — skewed degrees, where the work queue stays long and the
//! parallel compaction plus the fused relabel have real work to do). For
//! each graph and each of the paper's Table IV methods this times one
//! `find_mapping_in` on the host policy through a warm [`MapWorkspace`]
//! (median of `--runs`), plus a `hierarchy` variant that runs the full
//! multilevel driver and reports the summed per-level mapping seconds —
//! the number the level-reused workspace improves.
//!
//! Peak heap comes from an untimed [`mlcg_par::mem::measure`] run under
//! the *serial* policy through the same warm workspace: allocator scopes
//! attribute on the allocating thread only, so the serial run captures the
//! full mapping envelope (output labels, relabel flag, per-call sort
//! scratch) deterministically, where a host-policy run would silently drop
//! worker-side allocations. The warm-up run doubles as the suite's
//! fresh-vs-shared workspace identity cross-check.
//!
//! Results go to `target/repro/BENCH_map.json`; `--baseline FILE` gates
//! every variant's `seconds`, `peak_bytes`, and `bytes_per_vertex` like
//! the other bench gates.

use crate::harness::{header, median_time, row, Ctx};
use mlcg_coarsen::{
    coarsen, find_mapping, find_mapping_in, CoarsenOptions, MapMethod, MapWorkspace,
};
use mlcg_graph::cc::largest_component;
use mlcg_graph::generators as gen;
use mlcg_graph::Csr;
use mlcg_par::{ExecPolicy, TraceCollector};
use std::path::PathBuf;

struct Variant {
    key: String,
    seconds: f64,
    peak_bytes: u64,
}

/// Floor for recorded timings: the gate is relative
/// (`current > baseline * (1 + noise)`), so a near-zero median in the
/// committed baseline would fail on any positive current value. 10 µs is
/// far below every real suite timing and far above timer noise.
const SECONDS_FLOOR: f64 = 1e-5;

struct Entry {
    name: String,
    class: &'static str, // "regular" | "hub-heavy"
    n: usize,
    m: usize,
    variants: Vec<Variant>,
}

fn suite(ctx: &Ctx) -> Vec<(String, &'static str, Csr)> {
    if ctx.quick {
        vec![
            ("grid2d-64x64".into(), "regular", gen::grid2d(64, 64)),
            ("path-4096".into(), "regular", gen::path(4096)),
            (
                "rmat-10".into(),
                "hub-heavy",
                largest_component(&gen::rmat(10, 8, 0.57, 0.19, 0.19, ctx.seed)).0,
            ),
            ("star-8192".into(), "hub-heavy", gen::star(8192)),
        ]
    } else {
        vec![
            ("grid2d-512x512".into(), "regular", gen::grid2d(512, 512)),
            ("path-65536".into(), "regular", gen::path(65536)),
            (
                "rmat-15".into(),
                "hub-heavy",
                largest_component(&gen::rmat(15, 8, 0.57, 0.19, 0.19, ctx.seed)).0,
            ),
            ("star-262144".into(), "hub-heavy", gen::star(262144)),
        ]
    }
}

/// Run the mapping benchmark, write `BENCH_map.json`, and (with
/// `--baseline FILE`) gate seconds and peak bytes against a committed
/// baseline. Returns the process exit code (nonzero on regression).
pub fn run(ctx: &Ctx) -> i32 {
    let host = ctx.host();
    let serial = ExecPolicy::serial();
    let mut entries = Vec::new();

    for (name, class, g) in suite(ctx) {
        let mut variants = Vec::new();

        for method in MapMethod::TABLE4 {
            let mut ws = MapWorkspace::new();
            // Warm-up (pool spin-up, page faults, workspace sizing) doubles
            // as the suite's fresh-vs-shared identity cross-check: a shared
            // workspace must never change the serial result.
            let (fresh, _) = find_mapping(&serial, &g, method, ctx.seed);
            let (shared, _) = find_mapping_in(&serial, &g, method, ctx.seed, &mut ws);
            assert_eq!(
                fresh,
                shared,
                "{name}: {} differs between fresh and shared workspace",
                method.name()
            );
            if method == MapMethod::Mis2 {
                // The one Table IV method that is schedule-deterministic:
                // the host policy must reproduce the serial labels exactly.
                let (parallel, _) = find_mapping(&host, &g, method, ctx.seed);
                assert_eq!(parallel, fresh, "{name}: mis2 must be policy-invariant");
            }
            let mut ws_host = MapWorkspace::new();
            find_mapping_in(&host, &g, method, ctx.seed, &mut ws_host); // warm
            let (_, seconds) = median_time(ctx.runs, || {
                find_mapping_in(&host, &g, method, ctx.seed, &mut ws_host)
            });
            let seconds = seconds.max(SECONDS_FLOOR);
            // Untimed serial run through the warm workspace for
            // deterministic full-envelope heap attribution (module docs).
            let (_, mem) =
                mlcg_par::mem::measure(|| find_mapping_in(&serial, &g, method, ctx.seed, &mut ws));
            variants.push(Variant {
                key: method.name().to_string(),
                seconds,
                peak_bytes: mem.peak_bytes,
            });
        }

        // Full multilevel driver with the default method: summed per-level
        // mapping seconds — the workspace-reuse number.
        let copts = CoarsenOptions {
            seed: ctx.seed,
            trace: TraceCollector::disabled(),
            ..Default::default()
        };
        let _ = coarsen(&host, &g, &copts);
        let (h, _) = median_time(ctx.runs, || coarsen(&host, &g, &copts));
        let seconds: f64 = h.stats.map_seconds.iter().sum::<f64>().max(SECONDS_FLOOR);
        let (_, mem) = mlcg_par::mem::measure(|| coarsen(&serial, &g, &copts));
        variants.push(Variant {
            key: "hierarchy".to_string(),
            seconds,
            peak_bytes: mem.peak_bytes,
        });

        entries.push(Entry {
            name,
            class,
            n: g.n(),
            m: g.m(),
            variants,
        });
    }

    header(&["graph", "class", "n", "m", "variant", "seconds", "peak"]);
    for e in &entries {
        for v in &e.variants {
            row(&[
                e.name.clone(),
                e.class.to_string(),
                e.n.to_string(),
                e.m.to_string(),
                v.key.clone(),
                format!("{:.5}", v.seconds),
                mlcg_par::mem::fmt_bytes(v.peak_bytes),
            ]);
        }
    }

    // Hand-rolled JSON (the workspace is dependency-free).
    let mut json = String::from("{\n");
    json.push_str("  \"experiment\": \"bench-map\",\n");
    json.push_str(&format!("  \"quick\": {},\n", ctx.quick));
    json.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    json.push_str(&format!("  \"runs\": {},\n", ctx.runs));
    json.push_str("  \"graphs\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"class\": \"{}\", \"n\": {}, \"m\": {}",
            e.name, e.class, e.n, e.m
        ));
        for v in &e.variants {
            json.push_str(&format!(
                ", \"{}\": {{\"seconds\": {:.6}, \"peak_bytes\": {}, \"bytes_per_vertex\": {:.2}}}",
                v.key,
                v.seconds,
                v.peak_bytes,
                v.peak_bytes as f64 / e.n.max(1) as f64
            ));
        }
        json.push_str(&format!(
            "}}{}\n",
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let dir = PathBuf::from("target/repro");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_map.json");
    std::fs::write(&path, &json).unwrap();
    println!("bench-map: results written to {}", path.display());

    match &ctx.baseline {
        Some(baseline) => crate::compare::run_baseline_gate(baseline, &json, ctx.noise),
        None => 0,
    }
}

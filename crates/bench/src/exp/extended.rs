//! Extended method comparison — Table IV widened with the variants the
//! paper describes but does not tabulate (HEC2, HEC3, GOSH+HEC) and the
//! future-work methods this reproduction implements (Suitor, b-Suitor via
//! `MapMethod::Suitor`).

use crate::harness::{geo, header, median_time, ratio, row, Ctx};
use mlcg_coarsen::{coarsen, CoarsenOptions, MapMethod};
use mlcg_graph::suite::Group;

const METHODS: [MapMethod; 6] = [
    MapMethod::Hec2,
    MapMethod::Hec3,
    MapMethod::GoshHec,
    MapMethod::Suitor,
    MapMethod::Gosh,
    MapMethod::Mis2,
];

/// Print the extended comparison (time ratios vs HEC + level counts).
pub fn run(ctx: &Ctx) {
    let policy = ctx.device();
    let corpus = ctx.corpus();
    println!("Extended methods: coarsening time ratios vs HEC and level counts");
    let mut head = vec!["Graph"];
    head.extend(METHODS.iter().map(|m| m.name()));
    head.push("l HEC");
    let lvl_names: Vec<String> = METHODS.iter().map(|m| format!("l {}", m.name())).collect();
    head.extend(lvl_names.iter().map(|s| s.as_str()));
    header(&head);

    let mut geos: Vec<(Group, Vec<f64>)> = Vec::new();
    for ng in &corpus {
        let g = &ng.graph;
        let (h_hec, t_hec) = median_time(ctx.runs, || {
            coarsen(
                &policy,
                g,
                &CoarsenOptions {
                    method: MapMethod::Hec,
                    seed: ctx.seed,
                    ..Default::default()
                },
            )
        });
        let mut cells = vec![ng.name.to_string()];
        let mut ratios = Vec::new();
        let mut levels = Vec::new();
        for &method in &METHODS {
            let (h, t) = median_time(ctx.runs, || {
                coarsen(
                    &policy,
                    g,
                    &CoarsenOptions {
                        method,
                        seed: ctx.seed,
                        ..Default::default()
                    },
                )
            });
            ratios.push(t / t_hec);
            levels.push(h.num_levels());
        }
        cells.extend(ratios.iter().map(|&r| ratio(r)));
        cells.push(h_hec.num_levels().to_string());
        cells.extend(levels.iter().map(|l| l.to_string()));
        row(&cells);
        geos.push((ng.group, ratios));
    }
    for (group, label) in [(Group::Regular, "regular"), (Group::Skewed, "skewed")] {
        let sel: Vec<&(Group, Vec<f64>)> = geos.iter().filter(|r| r.0 == group).collect();
        if sel.is_empty() {
            continue;
        }
        let mut cells = vec![format!("GeoMean ({label})")];
        for i in 0..METHODS.len() {
            cells.push(ratio(geo(&sel.iter().map(|r| r.1[i]).collect::<Vec<_>>())));
        }
        row(&cells);
    }
}

//! Table VI — multilevel bisection with FM refinement: the FM +
//! device-HEC cut, cut ratios for FM + host-HEC, spectral, Metis-like and
//! mt-Metis-like, and the running-time ratio of device spectral (HEC) to
//! the mt-Metis-like partitioner.

use crate::harness::{geo, header, ratio, row, Ctx};
use mlcg_coarsen::{CoarsenOptions, MapMethod};
use mlcg_graph::suite::Group;
use mlcg_graph::Csr;
use mlcg_par::ExecPolicy;
use mlcg_partition::{
    fm_bisect, metis_like, mtmetis_like, spectral_bisect, FmConfig, PartitionResult,
};

fn median_by_cut(mut results: Vec<PartitionResult>) -> PartitionResult {
    results.sort_by_key(|r| r.cut);
    let mid = results.len() / 2;
    results.swap_remove(mid)
}

fn fm_runs(ctx: &Ctx, policy: &ExecPolicy, g: &Csr) -> PartitionResult {
    median_by_cut(
        (0..ctx.runs as u64)
            .map(|i| {
                let opts = CoarsenOptions {
                    method: MapMethod::Hec,
                    seed: ctx.seed + i,
                    ..Default::default()
                };
                fm_bisect(policy, g, &opts, &FmConfig::default(), ctx.seed + i)
            })
            .collect(),
    )
}

/// Print Table VI.
pub fn run(ctx: &Ctx) {
    let device = ctx.device();
    let host = ctx.host();
    let corpus = ctx.corpus();
    println!(
        "Table VI: FM-refined bisection (median of {} runs); ratios are cut_alt / cut(FM+dev-HEC)",
        ctx.runs
    );
    header(&[
        "Graph",
        "FM+devHEC cut",
        "FM+host",
        "Spectral",
        "Metis-like",
        "mtMetis-like",
        "t_spec / t_mtM",
    ]);
    let mut geos: Vec<(Group, [f64; 5])> = Vec::new();
    for ng in &corpus {
        let g = &ng.graph;
        let fm_dev = fm_runs(ctx, &device, g);
        let fm_host = fm_runs(ctx, &host, g);
        let spec = median_by_cut(
            (0..ctx.runs as u64)
                .map(|i| {
                    let opts = CoarsenOptions {
                        method: MapMethod::Hec,
                        seed: ctx.seed + i,
                        ..Default::default()
                    };
                    spectral_bisect(
                        &device,
                        g,
                        &opts,
                        &super::table5::spectral_cfg(ctx),
                        ctx.seed + i,
                    )
                })
                .collect(),
        );
        let met = median_by_cut(
            (0..ctx.runs as u64)
                .map(|i| metis_like(g, ctx.seed + i))
                .collect(),
        );
        let mtm = median_by_cut(
            (0..ctx.runs as u64)
                .map(|i| mtmetis_like(&host, g, ctx.seed + i))
                .collect(),
        );
        let base = fm_dev.cut.max(1) as f64;
        let vals = [
            fm_host.cut as f64 / base,
            spec.cut as f64 / base,
            met.cut as f64 / base,
            mtm.cut as f64 / base,
            spec.total_seconds() / mtm.total_seconds(),
        ];
        row(&[
            ng.name.to_string(),
            fm_dev.cut.to_string(),
            ratio(vals[0]),
            ratio(vals[1]),
            ratio(vals[2]),
            ratio(vals[3]),
            ratio(vals[4]),
        ]);
        geos.push((ng.group, vals));
    }
    for (group, label) in [(Group::Regular, "regular"), (Group::Skewed, "skewed")] {
        let sel: Vec<&(Group, [f64; 5])> = geos.iter().filter(|r| r.0 == group).collect();
        if sel.is_empty() {
            continue;
        }
        let mut cells = vec![format!("GeoMean ({label})"), String::new()];
        for i in 0..5 {
            cells.push(ratio(geo(&sel.iter().map(|r| r.1[i]).collect::<Vec<_>>())));
        }
        row(&cells);
    }
}

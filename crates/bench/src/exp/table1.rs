//! Table I — the evaluation corpus: m, n, and degree-skew ratio per graph,
//! split into the regular and skewed groups.

use crate::harness::{header, row, Ctx};
use mlcg_graph::suite::Group;
use mlcg_graph::DegreeStats;

/// Print the corpus table.
pub fn run(ctx: &Ctx) {
    let corpus = ctx.corpus();
    println!(
        "Table I: evaluation corpus (scale {}, preprocessed: LCC, relabeled)",
        ctx.scale
    );
    header(&["Graph", "Domain", "m", "n", "Δ/(2m/n)", "group"]);
    for ng in &corpus {
        let s = DegreeStats::of(&ng.graph);
        row(&[
            ng.name.to_string(),
            ng.domain.to_string(),
            s.m.to_string(),
            s.n.to_string(),
            format!("{:.1}", s.skew),
            match ng.group {
                Group::Regular => "regular".into(),
                Group::Skewed => "skewed".into(),
            },
        ]);
        // The corpus must respect the paper's grouping property.
        let consistent = match ng.group {
            Group::Regular => !s.is_skewed(),
            Group::Skewed => s.is_skewed(),
        };
        if !consistent {
            eprintln!(
                "warning: {} skew {:.1} does not match its group",
                ng.name, s.skew
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_runs_on_a_tiny_scale() {
        // Smoke: the full corpus is exercised by `repro table1`; here just
        // confirm the harness produces consistent stats for two entries.
        let ctx = Ctx::default();
        for ng in mlcg_graph::suite::mini_suite(ctx.seed) {
            let s = DegreeStats::of(&ng.graph);
            assert!(s.n > 0 && s.m > 0);
        }
    }
}

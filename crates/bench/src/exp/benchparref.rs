//! `bench-parref` — parallel coarse-level refinement benchmark.
//!
//! Runs a fixed-seed graph suite (the `bench-fm` quick suite, or a
//! larger full suite sized so the parallel engine's crossover genuinely
//! fires — see [`CROSSOVER_FULL`]) through two uncoarsening paths on one
//! shared hierarchy per graph:
//!
//! * `seq_boundary` — the PR 2 sequential boundary-driven FM driver
//!   ([`fm_uncoarsen_frac`]), the production fast path under a serial
//!   policy;
//! * `par_coarse` — the hybrid driver
//!   ([`fm_uncoarsen_frac_hybrid`]): frontier-based parallel
//!   refinement rounds on every level whose projected frontier crosses
//!   the crossover threshold, sequential boundary FM polish below it and
//!   after the rounds.
//!
//! Records per-graph cut and refinement-only median seconds for both,
//! writes `target/repro/BENCH_parref.json`, and (with `--baseline FILE`)
//! gates the timings like `bench-fm`. With `--trace`, one traced hybrid
//! run per graph emits the `parref/rounds` counter and the per-round
//! `parref/frontier_size` gauges plus `par_for/parref/*` dispatch
//! records.

use crate::harness::{header, median_time, row, secs, Ctx};
use mlcg_coarsen::{coarsen, CoarsenOptions};
use mlcg_graph::cc::largest_component;
use mlcg_graph::generators as gen;
use mlcg_graph::metrics::edge_cut;
use mlcg_graph::Csr;
use mlcg_par::TraceCollector;
use mlcg_partition::fm::{fm_uncoarsen_frac, fm_uncoarsen_frac_hybrid, FmConfig};
use mlcg_partition::parref::ParRefConfig;
use std::path::PathBuf;

/// Forced crossover threshold for the `par_coarse` variant in `--quick`
/// mode. The [`ParRefConfig`] default ties the threshold to
/// `HOST_GRAIN × workers`, which on the quick suite's small graphs
/// disables the parallel engine entirely — correct for production,
/// useless for tracking this code path in the CI gate. Quick mode pins
/// a low threshold so the rounds genuinely run on any host; the gate
/// compares against a baseline recorded the same way, so the known
/// small-frontier overhead cancels out.
const CROSSOVER_QUICK: usize = 512;

/// Crossover threshold for the full suite: one dispatch grain
/// (`HOST_GRAIN`), the smallest frontier that can split across workers
/// at all. This keeps the timing comparison honest — the engine engages
/// exactly where a dispatch can go wide (the fat rmat frontiers) and
/// stays off where the boundary is thin (grids, paths), which is the
/// production crossover story at a host-independent pin.
const CROSSOVER_FULL: usize = 2048;

struct Entry {
    name: String,
    n: usize,
    m: usize,
    seq_cut: u64,
    seq_secs: f64,
    seq_peak_bytes: u64,
    par_cut: u64,
    par_secs: f64,
    par_peak_bytes: u64,
}

fn suite(ctx: &Ctx) -> Vec<(String, Csr)> {
    if ctx.quick {
        vec![
            ("grid2d-64x64".to_string(), gen::grid2d(64, 64)),
            (
                "rmat-10".to_string(),
                largest_component(&gen::rmat(10, 8, 0.57, 0.19, 0.19, ctx.seed)).0,
            ),
            ("path-4096".to_string(), gen::path(4096)),
        ]
    } else {
        // Bigger graphs than bench-fm's full suite on purpose: the
        // parallel engine only engages once a level's projected frontier
        // crosses a dispatch grain, and rmat-15 is the smallest suite
        // member whose finest-level frontier (~15k vertices) does. The
        // grid and path stay below the crossover at every level and
        // document the other half of the story: thin-boundary graphs
        // keep the PR 2 sequential fast path, so their two variants
        // should measure as noise around parity.
        vec![
            ("grid2d-512x512".to_string(), gen::grid2d(512, 512)),
            (
                "rmat-15".to_string(),
                largest_component(&gen::rmat(15, 8, 0.57, 0.19, 0.19, ctx.seed)).0,
            ),
            ("path-65536".to_string(), gen::path(65536)),
        ]
    }
}

/// Run the parallel-refinement benchmark, write `BENCH_parref.json`, and
/// (with `--baseline FILE`) gate the timings against a committed
/// baseline. Returns the process exit code (nonzero on regression).
pub fn run(ctx: &Ctx) -> i32 {
    let policy = ctx.host();
    let cfg = FmConfig::default();
    let crossover = if ctx.quick {
        CROSSOVER_QUICK
    } else {
        CROSSOVER_FULL
    };
    let parref = ParRefConfig {
        epsilon: cfg.epsilon,
        crossover_frontier: Some(crossover),
        ..ParRefConfig::default()
    };
    let mut entries = Vec::new();

    for (name, g) in suite(ctx) {
        let h = coarsen(&policy, &g, &CoarsenOptions::default());
        let (seq_part, seq_secs) =
            median_time(ctx.runs, || fm_uncoarsen_frac(&h, &cfg, 0.5, ctx.seed));
        let (par_part, par_secs) = median_time(ctx.runs, || {
            fm_uncoarsen_frac_hybrid(
                &policy,
                &h,
                &cfg,
                &parref,
                0.5,
                ctx.seed,
                &TraceCollector::disabled(),
            )
        });
        // Heap attribution: one untimed run per variant inside an
        // allocator scope (timing loops are left unscoped).
        let (_, seq_mem) = mlcg_par::mem::measure(|| fm_uncoarsen_frac(&h, &cfg, 0.5, ctx.seed));
        let (_, par_mem) = mlcg_par::mem::measure(|| {
            fm_uncoarsen_frac_hybrid(
                &policy,
                &h,
                &cfg,
                &parref,
                0.5,
                ctx.seed,
                &TraceCollector::disabled(),
            )
        });
        entries.push(Entry {
            name: name.clone(),
            n: g.n(),
            m: g.m(),
            seq_cut: edge_cut(&g, &seq_part),
            seq_secs,
            seq_peak_bytes: seq_mem.peak_bytes,
            par_cut: edge_cut(&g, &par_part),
            par_secs,
            par_peak_bytes: par_mem.peak_bytes,
        });
        if ctx.trace_enabled() {
            let trace = ctx.trace_collector();
            let _p = mlcg_par::profile::install(&trace);
            let h_traced = coarsen(
                &policy,
                &g,
                &CoarsenOptions {
                    trace: trace.clone(),
                    seed: ctx.seed,
                    ..Default::default()
                },
            );
            fm_uncoarsen_frac_hybrid(&policy, &h_traced, &cfg, &parref, 0.5, ctx.seed, &trace);
            let report = trace.report();
            println!(
                "bench-parref/{name}: parref/rounds = {}",
                report.counter("parref/rounds")
            );
            ctx.emit_trace(&format!("bench-parref/{name}"), &report);
        }
    }

    header(&[
        "graph", "n", "m", "seq cut", "seq s", "seq peak", "par cut", "par s", "par peak",
        "speedup",
    ]);
    for e in &entries {
        row(&[
            e.name.clone(),
            e.n.to_string(),
            e.m.to_string(),
            e.seq_cut.to_string(),
            secs(e.seq_secs),
            mlcg_par::mem::fmt_bytes(e.seq_peak_bytes),
            e.par_cut.to_string(),
            secs(e.par_secs),
            mlcg_par::mem::fmt_bytes(e.par_peak_bytes),
            format!("{:.2}x", e.seq_secs / e.par_secs.max(1e-12)),
        ]);
    }

    // Hand-rolled JSON (the workspace is dependency-free).
    let mut json = String::from("{\n");
    json.push_str("  \"experiment\": \"bench-parref\",\n");
    json.push_str(&format!("  \"quick\": {},\n", ctx.quick));
    json.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    json.push_str(&format!("  \"runs\": {},\n", ctx.runs));
    json.push_str(&format!("  \"crossover_frontier\": {crossover},\n"));
    json.push_str("  \"graphs\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"m\": {}, \
             \"seq_boundary\": {{\"cut\": {}, \"refine_seconds\": {:.6}, \
             \"peak_bytes\": {}, \"bytes_per_edge\": {:.2}}}, \
             \"par_coarse\": {{\"cut\": {}, \"refine_seconds\": {:.6}, \
             \"peak_bytes\": {}, \"bytes_per_edge\": {:.2}}}, \
             \"speedup\": {:.3}}}{}\n",
            e.name,
            e.n,
            e.m,
            e.seq_cut,
            e.seq_secs,
            e.seq_peak_bytes,
            e.seq_peak_bytes as f64 / e.m.max(1) as f64,
            e.par_cut,
            e.par_secs,
            e.par_peak_bytes,
            e.par_peak_bytes as f64 / e.m.max(1) as f64,
            e.seq_secs / e.par_secs.max(1e-12),
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let dir = PathBuf::from("target/repro");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_parref.json");
    std::fs::write(&path, &json).unwrap();
    println!("bench-parref: results written to {}", path.display());

    match &ctx.baseline {
        Some(baseline) => crate::compare::run_baseline_gate(baseline, &json, ctx.noise),
        None => 0,
    }
}

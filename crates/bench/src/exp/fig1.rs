//! Fig. 1 — the coarse graphs produced after one level of coarsening with
//! each method on the small illustration graph, exported as Graphviz DOT
//! (vertex colors = aggregates, plus the resulting coarse graph).

use crate::harness::Ctx;
use mlcg_coarsen::{construct_coarse_graph, find_mapping, ConstructOptions, MapMethod};
use mlcg_graph::demo::fig1_graph;
use mlcg_graph::io::to_dot;
use mlcg_par::ExecPolicy;
use std::path::PathBuf;

/// Write one DOT file per method under `target/repro/fig1/`.
pub fn run(ctx: &Ctx) {
    let g = fig1_graph();
    let policy = ExecPolicy::serial();
    let dir = PathBuf::from("target/repro/fig1");
    std::fs::create_dir_all(&dir).expect("create output dir");
    println!(
        "Fig 1: one level of coarsening on the illustration graph ({})",
        g.summary()
    );
    println!(
        "{:>8} | {:>8} | {:>8} | aggregate sizes",
        "method", "coarse n", "coarse m"
    );
    for method in [
        MapMethod::SeqHec,
        MapMethod::Hec,
        MapMethod::Hem,
        MapMethod::MtMetis,
        MapMethod::Gosh,
        MapMethod::GoshHec,
        MapMethod::Mis2,
        MapMethod::Suitor,
    ] {
        let (mapping, _) = find_mapping(&policy, &g, method, ctx.seed);
        let coarse = construct_coarse_graph(&policy, &g, &mapping, &ConstructOptions::default());
        let mut sizes = mapping.aggregate_sizes();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        println!(
            "{:>8} | {:>8} | {:>8} | {:?}",
            method.name(),
            mapping.n_coarse,
            coarse.m(),
            sizes
        );
        let fine_dot = to_dot(&g, Some(&mapping.map));
        let coarse_dot = to_dot(&coarse, None);
        std::fs::write(dir.join(format!("{}-fine.dot", method.name())), fine_dot).unwrap();
        std::fs::write(
            dir.join(format!("{}-coarse.dot", method.name())),
            coarse_dot,
        )
        .unwrap();
    }
    println!("DOT files written to {}", dir.display());
}

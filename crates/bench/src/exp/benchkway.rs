//! `bench-kway` — direct k-way refinement benchmark.
//!
//! Runs a fixed-seed graph suite at `k = 8` through two variants that
//! share the recursive-bisection partition per graph:
//!
//! * `recursive` — recursive FM bisection only
//!   ([`kway_partition_cfg`] with `direct_refine: false`); its recorded
//!   seconds are the whole partition (coarsen + bisect cascade), the
//!   quantity the post-pass rides on top of;
//! * `direct_refine` — the direct k-way post-pass
//!   ([`kway_direct_refine`]) applied to a clone of the recursive
//!   labeling; its recorded seconds are the refinement alone, so the
//!   gate tracks the marginal cost of seeing all k labels jointly.
//!
//! Records per-graph cut, imbalance, and median seconds, writes
//! `target/repro/BENCH_kway.json`, and (with `--baseline FILE`) gates
//! the timings. With `--trace`, one traced refinement per graph prints
//! the `kwayref/rounds` counter and emits the `kwayref/*` gauges plus
//! `par_for/kwayref/*` dispatch records.

use crate::harness::{header, median_time, row, secs, Ctx};
use mlcg_coarsen::CoarsenOptions;
use mlcg_graph::cc::largest_component;
use mlcg_graph::generators as gen;
use mlcg_graph::metrics::edge_cut;
use mlcg_graph::Csr;
use mlcg_par::TraceCollector;
use mlcg_partition::fm::FmConfig;
use mlcg_partition::kway::{kway_imbalance, kway_partition_cfg, KwayConfig};
use mlcg_partition::kwayref::{kway_direct_refine, KwayRefineConfig};
use std::path::PathBuf;

/// Every suite graph is split into this many parts.
const K: usize = 8;

/// Forced crossover threshold in `--quick` mode, mirroring
/// `bench-parref`: the production default (`HOST_GRAIN × workers`) never
/// fires on the quick suite's small graphs, and the CI gate exists to
/// track the parallel k-way rounds path. The baseline is recorded the
/// same way, so the small-frontier overhead cancels out.
const CROSSOVER_QUICK: usize = 512;

/// Crossover threshold for the full suite: one dispatch grain — the
/// engine engages exactly where a dispatch can go wide.
const CROSSOVER_FULL: usize = 2048;

struct Entry {
    name: String,
    n: usize,
    m: usize,
    rec_cut: u64,
    rec_imb: f64,
    rec_secs: f64,
    rec_peak_bytes: u64,
    ref_cut: u64,
    ref_imb: f64,
    ref_secs: f64,
    ref_peak_bytes: u64,
}

fn suite(ctx: &Ctx) -> Vec<(String, Csr)> {
    if ctx.quick {
        vec![
            ("grid2d-64x64".to_string(), gen::grid2d(64, 64)),
            (
                "rmat-10".to_string(),
                largest_component(&gen::rmat(10, 8, 0.57, 0.19, 0.19, ctx.seed)).0,
            ),
            ("path-4096".to_string(), gen::path(4096)),
        ]
    } else {
        // Sized so the k-way boundary (≈ (k−1)× the bisection boundary)
        // crosses the full-suite dispatch grain on the rmat instance
        // while grid and path document the sequential-path half of the
        // crossover story, as in bench-parref.
        vec![
            ("grid2d-256x256".to_string(), gen::grid2d(256, 256)),
            (
                "rmat-14".to_string(),
                largest_component(&gen::rmat(14, 8, 0.57, 0.19, 0.19, ctx.seed)).0,
            ),
            ("path-65536".to_string(), gen::path(65536)),
        ]
    }
}

/// Run the k-way refinement benchmark, write `BENCH_kway.json`, and
/// (with `--baseline FILE`) gate the timings against a committed
/// baseline. Returns the process exit code (nonzero on regression).
pub fn run(ctx: &Ctx) -> i32 {
    let policy = ctx.host();
    let fm = FmConfig::default();
    let crossover = if ctx.quick {
        CROSSOVER_QUICK
    } else {
        CROSSOVER_FULL
    };
    let refine_cfg = KwayRefineConfig {
        epsilon: fm.epsilon,
        crossover_frontier: Some(crossover),
        ..KwayRefineConfig::default()
    };
    let recursive_cfg = KwayConfig {
        direct_refine: false,
        ..Default::default()
    };
    let mut entries = Vec::new();

    for (name, g) in suite(ctx) {
        let (rec, rec_secs) = median_time(ctx.runs, || {
            kway_partition_cfg(
                &policy,
                &g,
                K,
                &CoarsenOptions::default(),
                &fm,
                &recursive_cfg,
                ctx.seed,
                &TraceCollector::disabled(),
            )
        });
        let (ref_part, ref_secs) = median_time(ctx.runs, || {
            let mut part = rec.part.clone();
            kway_direct_refine(
                &policy,
                &g,
                &mut part,
                K,
                &refine_cfg,
                &TraceCollector::disabled(),
            );
            part
        });
        // Heap attribution: one untimed run per variant inside an
        // allocator scope (timing loops are left unscoped).
        let (_, rec_mem) = mlcg_par::mem::measure(|| {
            kway_partition_cfg(
                &policy,
                &g,
                K,
                &CoarsenOptions::default(),
                &fm,
                &recursive_cfg,
                ctx.seed,
                &TraceCollector::disabled(),
            )
        });
        let (_, ref_mem) = mlcg_par::mem::measure(|| {
            let mut part = rec.part.clone();
            kway_direct_refine(
                &policy,
                &g,
                &mut part,
                K,
                &refine_cfg,
                &TraceCollector::disabled(),
            );
            part
        });
        entries.push(Entry {
            name: name.clone(),
            n: g.n(),
            m: g.m(),
            rec_cut: rec.cut,
            rec_imb: rec.imbalance,
            rec_secs,
            rec_peak_bytes: rec_mem.peak_bytes,
            ref_cut: edge_cut(&g, &ref_part),
            ref_imb: kway_imbalance(&g, &ref_part, K),
            ref_secs,
            ref_peak_bytes: ref_mem.peak_bytes,
        });
        if ctx.trace_enabled() {
            let trace = ctx.trace_collector();
            let _p = mlcg_par::profile::install(&trace);
            let mut part = rec.part.clone();
            kway_direct_refine(&policy, &g, &mut part, K, &refine_cfg, &trace);
            let report = trace.report();
            println!(
                "bench-kway/{name}: kwayref/rounds = {}",
                report.counter("kwayref/rounds")
            );
            ctx.emit_trace(&format!("bench-kway/{name}"), &report);
        }
    }

    header(&[
        "graph", "n", "m", "rec cut", "rec imb", "rec s", "rec peak", "kway cut", "kway imb",
        "refine s", "ref peak",
    ]);
    for e in &entries {
        row(&[
            e.name.clone(),
            e.n.to_string(),
            e.m.to_string(),
            e.rec_cut.to_string(),
            format!("{:.3}", e.rec_imb),
            secs(e.rec_secs),
            mlcg_par::mem::fmt_bytes(e.rec_peak_bytes),
            e.ref_cut.to_string(),
            format!("{:.3}", e.ref_imb),
            secs(e.ref_secs),
            mlcg_par::mem::fmt_bytes(e.ref_peak_bytes),
        ]);
    }

    // Hand-rolled JSON (the workspace is dependency-free).
    let mut json = String::from("{\n");
    json.push_str("  \"experiment\": \"bench-kway\",\n");
    json.push_str(&format!("  \"quick\": {},\n", ctx.quick));
    json.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    json.push_str(&format!("  \"runs\": {},\n", ctx.runs));
    json.push_str(&format!("  \"k\": {K},\n"));
    json.push_str(&format!("  \"crossover_frontier\": {crossover},\n"));
    json.push_str("  \"graphs\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"m\": {}, \
             \"recursive\": {{\"cut\": {}, \"imbalance\": {:.4}, \"refine_seconds\": {:.6}, \
             \"peak_bytes\": {}, \"bytes_per_edge\": {:.2}}}, \
             \"direct_refine\": {{\"cut\": {}, \"imbalance\": {:.4}, \"refine_seconds\": {:.6}, \
             \"peak_bytes\": {}, \"bytes_per_edge\": {:.2}}}, \
             \"cut_improvement\": {:.4}}}{}\n",
            e.name,
            e.n,
            e.m,
            e.rec_cut,
            e.rec_imb,
            e.rec_secs,
            e.rec_peak_bytes,
            e.rec_peak_bytes as f64 / e.m.max(1) as f64,
            e.ref_cut,
            e.ref_imb,
            e.ref_secs,
            e.ref_peak_bytes,
            e.ref_peak_bytes as f64 / e.m.max(1) as f64,
            1.0 - e.ref_cut as f64 / e.rec_cut.max(1) as f64,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let dir = PathBuf::from("target/repro");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_kway.json");
    std::fs::write(&path, &json).unwrap();
    println!("bench-kway: results written to {}", path.display());

    match &ctx.baseline {
        Some(baseline) => crate::compare::run_baseline_gate(baseline, &json, ctx.noise),
        None => 0,
    }
}

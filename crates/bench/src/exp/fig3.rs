//! Fig. 3 — HEC coarsening performance:
//! *left*: per-graph performance rate (graph size `2m + n` divided by the
//! coarsening time);
//! *mid*: device-sim vs host speedup per graph (the paper's GPU vs 32-core
//! CPU comparison — see DESIGN.md §3.1 for what this means here);
//! *right*: weak scaling of the rgg / delaunay / kron families.

use crate::harness::{geo, header, median_time, row, Ctx};
use mlcg_coarsen::{coarsen, CoarsenOptions};
use mlcg_graph::suite::by_name;
use mlcg_par::ExecPolicy;

fn coarsen_time(ctx: &Ctx, policy: &ExecPolicy, g: &mlcg_graph::Csr) -> f64 {
    let opts = CoarsenOptions {
        seed: ctx.seed,
        ..Default::default()
    };
    let (_, t) = median_time(ctx.runs, || coarsen(policy, g, &opts));
    t
}

/// Fig. 3 left: performance rate per corpus graph.
pub fn run_left(ctx: &Ctx) {
    let policy = ctx.device();
    println!("Fig 3 (left): HEC performance rate on device-sim (higher is better)");
    header(&["Graph", "2m+n", "t_c (s)", "Medges/s"]);
    for ng in &ctx.corpus() {
        let g = &ng.graph;
        let t = coarsen_time(ctx, &policy, g);
        row(&[
            ng.name.to_string(),
            g.size().to_string(),
            format!("{t:.3}"),
            format!("{:.1}", g.size() as f64 / t / 1e6),
        ]);
    }
}

/// Fig. 3 mid: device-sim vs host speedup per graph.
pub fn run_mid(ctx: &Ctx) {
    let device = ctx.device();
    let host = ctx.host();
    println!(
        "Fig 3 (mid): device-sim / host speedup (paper: GPU vs 32-core CPU, geomean 2.4x; \
         here both policies run on the same silicon — see DESIGN.md §3.1)"
    );
    header(&["Graph", "t_host (s)", "t_device (s)", "speedup"]);
    let mut speedups = Vec::new();
    for ng in &ctx.corpus() {
        let g = &ng.graph;
        let th = coarsen_time(ctx, &host, g);
        let td = coarsen_time(ctx, &device, g);
        let s = th / td;
        speedups.push(s);
        row(&[
            ng.name.to_string(),
            format!("{th:.3}"),
            format!("{td:.3}"),
            format!("{s:.2}"),
        ]);
    }
    println!("geomean speedup: {:.2}", geo(&speedups));
}

/// Fig. 3 right: weak scaling on the synthetic families.
pub fn run_right(ctx: &Ctx) {
    let policy = ctx.device();
    let max_scale = if ctx.fast { 1 } else { 2 };
    println!("Fig 3 (right): weak scaling (rate in Medges/s per scale; n doubles per step)");
    header(&["family", "scale", "2m+n", "t_c (s)", "Medges/s"]);
    for family in ["rgg", "delaunay", "kron"] {
        for scale in 0..=max_scale {
            let g = by_name(family, scale, ctx.seed).expect("family name");
            let t = coarsen_time(ctx, &policy, &g);
            row(&[
                family.to_string(),
                scale.to_string(),
                g.size().to_string(),
                format!("{t:.3}"),
                format!("{:.1}", g.size() as f64 / t / 1e6),
            ]);
        }
    }
}

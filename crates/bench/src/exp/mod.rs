//! One module per table/figure of the paper.

pub mod ablate;
pub mod benchfm;
pub mod extended;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod table1;
pub mod table23;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod trace;

use crate::harness::Ctx;

/// Every experiment name understood by the `repro` binary.
pub const ALL: [&str; 15] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "fig1",
    "fig2",
    "fig3-left",
    "fig3-mid",
    "fig3-right",
    "ablate-dedup",
    "bench-fm",
    "extended-methods",
    "trace",
];

/// Dispatch one experiment by name. Returns false for unknown names.
pub fn run(name: &str, ctx: &Ctx) -> bool {
    match name {
        "table1" => table1::run(ctx),
        "table2" => table23::run(ctx, true),
        "table3" => table23::run(ctx, false),
        "table4" => table4::run(ctx),
        "table5" => table5::run(ctx),
        "table6" => table6::run(ctx),
        "fig1" => fig1::run(ctx),
        "fig2" => fig2::run(ctx),
        "fig3-left" => fig3::run_left(ctx),
        "fig3-mid" => fig3::run_mid(ctx),
        "fig3-right" => fig3::run_right(ctx),
        "ablate-dedup" => ablate::run(ctx),
        "bench-fm" => benchfm::run(ctx),
        "extended-methods" => extended::run(ctx),
        "trace" => trace::run(ctx),
        "all" => {
            for name in ALL {
                println!("\n===== {name} =====");
                run(name, ctx);
            }
        }
        _ => return false,
    }
    true
}

//! One module per table/figure of the paper.

pub mod ablate;
pub mod benchcoarsen;
pub mod benchfm;
pub mod benchingest;
pub mod benchkway;
pub mod benchmap;
pub mod benchparref;
pub mod extended;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod table1;
pub mod table23;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod trace;

use crate::harness::Ctx;

/// Every experiment name understood by the `repro` binary.
pub const ALL: [&str; 20] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "fig1",
    "fig2",
    "fig3-left",
    "fig3-mid",
    "fig3-right",
    "ablate-dedup",
    "bench-coarsen",
    "bench-fm",
    "bench-ingest",
    "bench-kway",
    "bench-map",
    "bench-parref",
    "extended-methods",
    "trace",
];

/// Dispatch one experiment by name. Returns the process exit code
/// (`0` pass, nonzero for a failed regression gate), or `None` for
/// unknown names.
pub fn run(name: &str, ctx: &Ctx) -> Option<i32> {
    let code = match name {
        "table1" => {
            table1::run(ctx);
            0
        }
        "table2" => {
            table23::run(ctx, true);
            0
        }
        "table3" => {
            table23::run(ctx, false);
            0
        }
        "table4" => {
            table4::run(ctx);
            0
        }
        "table5" => {
            table5::run(ctx);
            0
        }
        "table6" => {
            table6::run(ctx);
            0
        }
        "fig1" => {
            fig1::run(ctx);
            0
        }
        "fig2" => {
            fig2::run(ctx);
            0
        }
        "fig3-left" => {
            fig3::run_left(ctx);
            0
        }
        "fig3-mid" => {
            fig3::run_mid(ctx);
            0
        }
        "fig3-right" => {
            fig3::run_right(ctx);
            0
        }
        "ablate-dedup" => {
            ablate::run(ctx);
            0
        }
        "bench-coarsen" => benchcoarsen::run(ctx),
        "bench-fm" => benchfm::run(ctx),
        "bench-ingest" => benchingest::run(ctx),
        "bench-kway" => benchkway::run(ctx),
        "bench-map" => benchmap::run(ctx),
        "bench-parref" => benchparref::run(ctx),
        "extended-methods" => {
            extended::run(ctx);
            0
        }
        "trace" => {
            trace::run(ctx);
            0
        }
        "all" => {
            let mut worst = 0;
            for name in ALL {
                println!("\n===== {name} =====");
                worst = worst.max(run(name, ctx).unwrap_or(0));
            }
            worst
        }
        _ => return None,
    };
    Some(code)
}

//! `trace` — pipeline observability demo: run the full coarsen → partition
//! pipeline on the mini corpus with tracing enabled and emit the JSON-lines
//! trace plus the aggregated span tree for both refinement drivers.
//!
//! Tracing is always on for this experiment (it exists to show traces);
//! `MLCG_VALIDATE=1` additionally records the invariant audits as trace
//! events.

use crate::harness::Ctx;
use mlcg_coarsen::{CoarsenOptions, ConstructMethod, ConstructOptions, MapMethod};
use mlcg_graph::suite;
use mlcg_partition::{fm_bisect, FmConfig};
use mlcg_partition::{spectral_bisect, SpectralConfig};

/// Run the observability demo.
pub fn run(ctx: &Ctx) {
    let forced = Ctx {
        trace: true,
        ..ctx.clone()
    };
    let corpus = suite::mini_suite(ctx.seed);
    let opts = |trace| CoarsenOptions {
        method: MapMethod::Hec,
        construction: ConstructOptions::with_method(ConstructMethod::Hash),
        seed: ctx.seed,
        trace,
        ..Default::default()
    };
    for policy in [forced.host(), forced.device()] {
        for ng in corpus.iter().take(2) {
            let o = opts(forced.trace_collector());
            let r = {
                let _p = mlcg_par::profile::install(&o.trace);
                fm_bisect(&policy, &ng.graph, &o, &FmConfig::default(), ctx.seed)
            };
            forced.emit_trace(&format!("fm/{}/{policy}", ng.name), &r.trace);
            let o = opts(forced.trace_collector());
            let r = {
                let _p = mlcg_par::profile::install(&o.trace);
                spectral_bisect(&policy, &ng.graph, &o, &SpectralConfig::default(), ctx.seed)
            };
            forced.emit_trace(&format!("spectral/{}/{policy}", ng.name), &r.trace);
        }
    }
}

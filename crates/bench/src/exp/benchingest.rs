//! `bench-ingest` — streaming ingest and offset-width benchmark.
//!
//! For each suite graph, times two builds of the same edge multiset:
//!
//! * `inmem` — the one-shot in-memory builder, which stages the whole
//!   edge list (16 bytes/edge of auxiliary memory on top of the CSR);
//! * `streamed` — the two-pass chunked path
//!   ([`mlcg_graph::stream::build_csr`]), whose staging is one chunk
//!   buffer regardless of the graph's size.
//!
//! The streamed result is asserted bit-identical to the in-memory one,
//! its peak auxiliary bytes are asserted bounded by the configured chunk
//! (the acceptance criterion of the streaming substrate), and the final
//! offsets are asserted to engage the narrow `u32` mode on every suite
//! graph. Two SpMV variants then measure what that narrow mode buys:
//! `spmv_u32` runs on the production (adaptive) matrix, `spmv_usize` on
//! a copy with offsets forcibly widened to `usize`. Results go to
//! `target/repro/BENCH_ingest.json`; `--baseline FILE` gates every
//! `seconds` member like the fm/parref/kway benches, plus the memory
//! members (`peak_bytes`, `bytes_per_edge`, `aux_bytes_per_edge`)
//! recorded from untimed allocator-scoped runs. The streamed build's
//! measured peak heap is additionally asserted within 10% of the
//! predictable staging+CSR budget.

use crate::harness::{header, median_time, row, Ctx};
use mlcg_graph::builder::{from_edges_with_mode, EDGE_ITEM_BYTES};
use mlcg_graph::cc::largest_component;
use mlcg_graph::generators as gen;
use mlcg_graph::stream::{build_csr, IngestOptions, SliceSource};
use mlcg_graph::{Csr, MergeMode, VId, Weight};
use mlcg_sparse::{spmv, CsrMatrix};
use std::path::PathBuf;

/// SpMV iterations folded into one timed sample, so the small quick-suite
/// matrices produce measurable times.
const SPMV_ITERS: usize = 10;

struct Entry {
    name: String,
    n: usize,
    m: usize,
    inmem_secs: f64,
    inmem_aux_per_edge: f64,
    inmem_peak_bytes: u64,
    streamed_secs: f64,
    streamed_aux_per_edge: f64,
    streamed_peak_bytes: u64,
    chunks: u64,
    spmv_u32_secs: f64,
    spmv_usize_secs: f64,
}

fn suite(ctx: &Ctx) -> Vec<(String, Csr)> {
    if ctx.quick {
        vec![
            ("grid2d-64x64".to_string(), gen::grid2d(64, 64)),
            (
                "rmat-10".to_string(),
                largest_component(&gen::rmat(10, 8, 0.57, 0.19, 0.19, ctx.seed)).0,
            ),
            ("path-4096".to_string(), gen::path(4096)),
        ]
    } else {
        vec![
            ("grid2d-512x512".to_string(), gen::grid2d(512, 512)),
            (
                "rmat-15".to_string(),
                largest_component(&gen::rmat(15, 8, 0.57, 0.19, 0.19, ctx.seed)).0,
            ),
            ("path-65536".to_string(), gen::path(65536)),
        ]
    }
}

fn upper_edges(g: &Csr) -> Vec<(VId, VId, Weight)> {
    let mut edges = Vec::with_capacity(g.m());
    for u in 0..g.n() as VId {
        for (v, w) in g.edges(u) {
            if v > u {
                edges.push((u, v, w));
            }
        }
    }
    edges
}

/// Time `SPMV_ITERS` products `y = A·x`; returns seconds per batch.
fn time_spmv(ctx: &Ctx, a: &CsrMatrix) -> f64 {
    let policy = ctx.host();
    let x: Vec<f64> = (0..a.n_cols).map(|i| 1.0 + (i % 7) as f64).collect();
    let mut y = vec![0.0; a.n_rows];
    spmv(&policy, a, &x, &mut y); // warm-up
    let (_, secs) = median_time(ctx.runs, || {
        for _ in 0..SPMV_ITERS {
            spmv(&policy, a, &x, &mut y);
        }
        y[0]
    });
    secs
}

/// Run the ingest benchmark, write `BENCH_ingest.json`, and (with
/// `--baseline FILE`) gate the timings against a committed baseline.
/// Returns the process exit code (nonzero on regression).
pub fn run(ctx: &Ctx) -> i32 {
    let chunk_edges: usize = if ctx.quick { 1024 } else { 1 << 16 };
    let mut entries = Vec::new();

    for (name, g) in suite(ctx) {
        let edges = upper_edges(&g);
        let m = edges.len();

        // Warm-up (pool spin-up, allocator, page faults) before timing.
        let _ = from_edges_with_mode(&ctx.host(), g.n(), &edges, MergeMode::Sum);
        let (inmem, inmem_secs) = median_time(ctx.runs, || {
            from_edges_with_mode(&ctx.host(), g.n(), &edges, MergeMode::Sum)
        });
        assert_eq!(inmem, g, "in-memory rebuild must reproduce the graph");

        let opts = IngestOptions {
            chunk_edges,
            policy: ctx.host(),
        };
        let _ = build_csr(&mut SliceSource::new(g.n(), &edges), MergeMode::Sum, &opts).unwrap();
        let ((streamed, stats), streamed_secs) = median_time(ctx.runs, || {
            let mut src = SliceSource::new(g.n(), &edges);
            build_csr(&mut src, MergeMode::Sum, &opts).unwrap()
        });
        assert_eq!(
            streamed, inmem,
            "{name}: streamed build must be bit-identical to in-memory"
        );
        assert!(
            stats.peak_staging_bytes <= chunk_edges * EDGE_ITEM_BYTES,
            "{name}: staging {} exceeds the chunk bound {}",
            stats.peak_staging_bytes,
            chunk_edges * EDGE_ITEM_BYTES
        );
        assert!(
            stats.offsets_are_u32,
            "{name}: u32 offset mode must engage on every bench graph"
        );

        // Heap attribution: one untimed run per variant inside an
        // allocator scope (timing loops are left unscoped). The streamed
        // build's peak must match the predictable budget — the chunk
        // staging buffer plus the finished CSR — within 10%: the two-pass
        // scatter arrays (wide degree scan + narrow cursors) are sized to
        // land on that envelope, and a regression here means the builder
        // grew a hidden copy.
        let (_, inmem_mem) = mlcg_par::mem::measure(|| {
            from_edges_with_mode(&ctx.host(), g.n(), &edges, MergeMode::Sum)
        });
        let (_, streamed_mem) = mlcg_par::mem::measure(|| {
            let mut src = SliceSource::new(g.n(), &edges);
            build_csr(&mut src, MergeMode::Sum, &opts).unwrap()
        });
        let expected = (stats.peak_staging_bytes + streamed.heap_bytes()) as f64;
        let ratio = streamed_mem.peak_bytes as f64 / expected;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "{name}: streamed peak heap {} is {:.3}x the staging+CSR budget {}",
            streamed_mem.peak_bytes,
            ratio,
            expected as u64
        );

        let a32 = CsrMatrix::from_graph(&g);
        assert!(
            a32.row_ptr.is_u32(),
            "{name}: adaptive matrix must inherit narrow offsets"
        );
        let mut awide = a32.clone();
        awide.widen_offsets();
        let spmv_u32_secs = time_spmv(ctx, &a32);
        let spmv_usize_secs = time_spmv(ctx, &awide);

        entries.push(Entry {
            name,
            n: g.n(),
            m,
            inmem_secs,
            inmem_aux_per_edge: (m * EDGE_ITEM_BYTES) as f64 / m.max(1) as f64,
            inmem_peak_bytes: inmem_mem.peak_bytes,
            streamed_secs,
            streamed_aux_per_edge: stats.peak_staging_bytes as f64 / m.max(1) as f64,
            streamed_peak_bytes: streamed_mem.peak_bytes,
            chunks: stats.chunks,
            spmv_u32_secs,
            spmv_usize_secs,
        });
    }

    header(&[
        "graph",
        "n",
        "m",
        "inmem s",
        "aux B/e",
        "inmem peak",
        "streamed s",
        "aux B/e",
        "str peak",
        "chunks",
        "spmv u32 s",
        "spmv usize s",
    ]);
    for e in &entries {
        row(&[
            e.name.clone(),
            e.n.to_string(),
            e.m.to_string(),
            format!("{:.4}", e.inmem_secs),
            format!("{:.1}", e.inmem_aux_per_edge),
            mlcg_par::mem::fmt_bytes(e.inmem_peak_bytes),
            format!("{:.4}", e.streamed_secs),
            format!("{:.2}", e.streamed_aux_per_edge),
            mlcg_par::mem::fmt_bytes(e.streamed_peak_bytes),
            e.chunks.to_string(),
            format!("{:.5}", e.spmv_u32_secs),
            format!("{:.5}", e.spmv_usize_secs),
        ]);
    }

    // Hand-rolled JSON (the workspace is dependency-free).
    let mut json = String::from("{\n");
    json.push_str("  \"experiment\": \"bench-ingest\",\n");
    json.push_str(&format!("  \"quick\": {},\n", ctx.quick));
    json.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    json.push_str(&format!("  \"runs\": {},\n", ctx.runs));
    json.push_str(&format!("  \"chunk_edges\": {chunk_edges},\n"));
    json.push_str(&format!("  \"spmv_iters\": {SPMV_ITERS},\n"));
    json.push_str("  \"graphs\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"m\": {}, \
             \"inmem\": {{\"seconds\": {:.6}, \"aux_bytes_per_edge\": {:.2}, \
             \"peak_bytes\": {}, \"bytes_per_edge\": {:.2}}}, \
             \"streamed\": {{\"seconds\": {:.6}, \"aux_bytes_per_edge\": {:.2}, \
             \"peak_bytes\": {}, \"bytes_per_edge\": {:.2}, \"chunks\": {}}}, \
             \"spmv_u32\": {{\"seconds\": {:.6}}}, \
             \"spmv_usize\": {{\"seconds\": {:.6}}}}}{}\n",
            e.name,
            e.n,
            e.m,
            e.inmem_secs,
            e.inmem_aux_per_edge,
            e.inmem_peak_bytes,
            e.inmem_peak_bytes as f64 / e.m.max(1) as f64,
            e.streamed_secs,
            e.streamed_aux_per_edge,
            e.streamed_peak_bytes,
            e.streamed_peak_bytes as f64 / e.m.max(1) as f64,
            e.chunks,
            e.spmv_u32_secs,
            e.spmv_usize_secs,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let dir = PathBuf::from("target/repro");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_ingest.json");
    std::fs::write(&path, &json).unwrap();
    println!("bench-ingest: results written to {}", path.display());

    match &ctx.baseline {
        Some(baseline) => crate::compare::run_baseline_gate(baseline, &json, ctx.noise),
        None => 0,
    }
}

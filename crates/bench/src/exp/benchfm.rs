//! `bench-fm` — FM refinement trajectory benchmark.
//!
//! Runs boundary-driven and full-scan FM uncoarsening on a fixed-seed
//! graph suite (grid2d / rmat / path), records the cut and the
//! refinement-only seconds for both, and writes the results to
//! `target/repro/BENCH_fm.json` so the bench trajectory can be tracked
//! across commits. `--quick` shrinks the suite for CI smoke runs; with
//! `--trace`, one traced multilevel run per graph emits the per-pass
//! `fm/boundary_size` gauges.

use crate::harness::{header, median_time, row, secs, Ctx};
use mlcg_coarsen::{coarsen, CoarsenOptions};
use mlcg_graph::cc::largest_component;
use mlcg_graph::generators as gen;
use mlcg_graph::metrics::edge_cut;
use mlcg_graph::Csr;
use mlcg_partition::fm::{fm_uncoarsen_frac, fm_uncoarsen_frac_full_scan, FmConfig};
use mlcg_partition::fm_bisect;
use std::path::PathBuf;

struct Entry {
    name: String,
    n: usize,
    m: usize,
    full_cut: u64,
    full_secs: f64,
    full_peak_bytes: u64,
    boundary_cut: u64,
    boundary_secs: f64,
    boundary_peak_bytes: u64,
}

fn suite(ctx: &Ctx) -> Vec<(String, Csr)> {
    if ctx.quick {
        vec![
            ("grid2d-64x64".to_string(), gen::grid2d(64, 64)),
            (
                "rmat-10".to_string(),
                largest_component(&gen::rmat(10, 8, 0.57, 0.19, 0.19, ctx.seed)).0,
            ),
            ("path-4096".to_string(), gen::path(4096)),
        ]
    } else {
        vec![
            ("grid2d-256x256".to_string(), gen::grid2d(256, 256)),
            (
                "rmat-13".to_string(),
                largest_component(&gen::rmat(13, 8, 0.57, 0.19, 0.19, ctx.seed)).0,
            ),
            ("path-65536".to_string(), gen::path(65536)),
        ]
    }
}

/// Run the FM refinement benchmark, write `BENCH_fm.json`, and (with
/// `--baseline FILE`) gate the timings against a committed baseline.
/// Returns the process exit code (nonzero on regression).
pub fn run(ctx: &Ctx) -> i32 {
    let policy = ctx.host();
    let cfg = FmConfig::default();
    let mut entries = Vec::new();

    for (name, g) in suite(ctx) {
        let h = coarsen(&policy, &g, &CoarsenOptions::default());
        let (full, full_secs) = median_time(ctx.runs, || {
            fm_uncoarsen_frac_full_scan(&h, &cfg, 0.5, ctx.seed)
        });
        let (bpart, boundary_secs) =
            median_time(ctx.runs, || fm_uncoarsen_frac(&h, &cfg, 0.5, ctx.seed));
        // Heap attribution: one untimed run per variant inside an
        // allocator scope (timing loops are left unscoped).
        let (_, full_mem) =
            mlcg_par::mem::measure(|| fm_uncoarsen_frac_full_scan(&h, &cfg, 0.5, ctx.seed));
        let (_, bnd_mem) = mlcg_par::mem::measure(|| fm_uncoarsen_frac(&h, &cfg, 0.5, ctx.seed));
        entries.push(Entry {
            name: name.clone(),
            n: g.n(),
            m: g.m(),
            full_cut: full.1,
            full_secs,
            full_peak_bytes: full_mem.peak_bytes,
            boundary_cut: edge_cut(&g, &bpart),
            boundary_secs,
            boundary_peak_bytes: bnd_mem.peak_bytes,
        });
        if ctx.trace_enabled() {
            let opts = CoarsenOptions {
                trace: ctx.trace_collector(),
                seed: ctx.seed,
                ..Default::default()
            };
            let _p = mlcg_par::profile::install(&opts.trace);
            let r = fm_bisect(&policy, &g, &opts, &cfg, ctx.seed);
            ctx.emit_trace(&format!("bench-fm/{name}"), &r.trace);
        }
    }

    header(&[
        "graph",
        "n",
        "m",
        "full cut",
        "full s",
        "full peak",
        "boundary cut",
        "boundary s",
        "bnd peak",
        "speedup",
    ]);
    for e in &entries {
        row(&[
            e.name.clone(),
            e.n.to_string(),
            e.m.to_string(),
            e.full_cut.to_string(),
            secs(e.full_secs),
            mlcg_par::mem::fmt_bytes(e.full_peak_bytes),
            e.boundary_cut.to_string(),
            secs(e.boundary_secs),
            mlcg_par::mem::fmt_bytes(e.boundary_peak_bytes),
            format!("{:.2}x", e.full_secs / e.boundary_secs.max(1e-12)),
        ]);
    }

    // Hand-rolled JSON (the workspace is dependency-free).
    let mut json = String::from("{\n");
    json.push_str("  \"experiment\": \"bench-fm\",\n");
    json.push_str(&format!("  \"quick\": {},\n", ctx.quick));
    json.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    json.push_str(&format!("  \"runs\": {},\n", ctx.runs));
    json.push_str("  \"graphs\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"m\": {}, \
             \"full_scan\": {{\"cut\": {}, \"refine_seconds\": {:.6}, \
             \"peak_bytes\": {}, \"bytes_per_edge\": {:.2}}}, \
             \"boundary\": {{\"cut\": {}, \"refine_seconds\": {:.6}, \
             \"peak_bytes\": {}, \"bytes_per_edge\": {:.2}}}, \
             \"speedup\": {:.3}}}{}\n",
            e.name,
            e.n,
            e.m,
            e.full_cut,
            e.full_secs,
            e.full_peak_bytes,
            e.full_peak_bytes as f64 / e.m.max(1) as f64,
            e.boundary_cut,
            e.boundary_secs,
            e.boundary_peak_bytes,
            e.boundary_peak_bytes as f64 / e.m.max(1) as f64,
            e.full_secs / e.boundary_secs.max(1e-12),
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let dir = PathBuf::from("target/repro");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_fm.json");
    std::fs::write(&path, &json).unwrap();
    println!("bench-fm: results written to {}", path.display());

    match &ctx.baseline {
        Some(baseline) => crate::compare::run_baseline_gate(baseline, &json, ctx.noise),
        None => 0,
    }
}

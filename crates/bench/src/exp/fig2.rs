//! Fig. 2 — HEC's heavy-edge classification (create / inherit / skip) and
//! the heavy-neighbor digraph (a pseudoforest) on the illustration graph.

use crate::harness::Ctx;
use mlcg_coarsen::mapping::classify::{classify_heavy_edges, EdgeClass};
use mlcg_graph::demo::fig1_graph;
use std::path::PathBuf;

/// Print the classification and write the H digraph as DOT.
pub fn run(ctx: &Ctx) {
    let g = fig1_graph();
    let (edges, h) = classify_heavy_edges(&ctx.host(), &g, ctx.seed);
    println!("Fig 2 (left): heavy-edge classification in sequential HEC visit order");
    println!("{:>6} | {:>4} -> {:<4} | class", "visit", "u", "H[u]");
    let mut counts = [0usize; 3];
    for (i, e) in edges.iter().enumerate() {
        let (name, idx) = match e.class {
            EdgeClass::Create => ("create", 0),
            EdgeClass::Inherit => ("inherit", 1),
            EdgeClass::Skip => ("skip", 2),
        };
        counts[idx] += 1;
        println!("{:>6} | {:>4} -> {:<4} | {name}", i, e.u, e.v);
    }
    println!(
        "totals: {} create, {} inherit, {} skip (2·create + inherit = n = {})",
        counts[0],
        counts[1],
        counts[2],
        g.n()
    );

    // Fig 2 (right): the directed heavy-neighbor graph.
    let mut dot = String::from("digraph H {\n");
    for (u, &v) in h.iter().enumerate() {
        dot.push_str(&format!("  {u} -> {v};\n"));
    }
    dot.push_str("}\n");
    let dir = PathBuf::from("target/repro");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fig2-heavy-digraph.dot");
    std::fs::write(&path, dot).unwrap();
    println!(
        "Fig 2 (right): heavy-neighbor digraph written to {}",
        path.display()
    );
}

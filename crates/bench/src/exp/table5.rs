//! Table V — multilevel *spectral* bisection on the device-sim policy:
//! total time and coarsening fraction with HEC coarsening, the median edge
//! cut, and cut ratios when the coarsener is swapped for HEM or
//! mt-Metis-style two-hop matching.

use crate::harness::{geo, header, ratio, row, secs, Ctx};
use mlcg_coarsen::{CoarsenOptions, MapMethod};
use mlcg_graph::suite::Group;
use mlcg_graph::Csr;
use mlcg_par::ExecPolicy;
use mlcg_partition::{spectral_bisect, PartitionResult, SpectralConfig};

pub(crate) fn spectral_cfg(ctx: &Ctx) -> SpectralConfig {
    if ctx.fast {
        SpectralConfig {
            tol: 1e-10,
            coarse_max_iters: 500,
            refine_max_iters: 50,
            fm_polish: None,
        }
    } else {
        SpectralConfig {
            tol: 1e-10,
            coarse_max_iters: 5_000,
            refine_max_iters: 500,
            fm_polish: None,
        }
    }
}

fn run_one(ctx: &Ctx, policy: &ExecPolicy, g: &Csr, method: MapMethod) -> PartitionResult {
    // The paper reports the median cut of 10 runs; we take the median-cut
    // run of `ctx.runs` seeds.
    let mut results: Vec<PartitionResult> = (0..ctx.runs as u64)
        .map(|i| {
            let opts = CoarsenOptions {
                method,
                seed: ctx.seed + i,
                ..Default::default()
            };
            spectral_bisect(policy, g, &opts, &spectral_cfg(ctx), ctx.seed + i)
        })
        .collect();
    results.sort_by_key(|r| r.cut);
    results.swap_remove(results.len() / 2)
}

/// Print Table V.
pub fn run(ctx: &Ctx) {
    let policy = ctx.device();
    let corpus = ctx.corpus();
    println!(
        "Table V: spectral bisection (device-sim policy, tol 1e-10, median of {} runs)",
        ctx.runs
    );
    header(&["Graph", "Time (s)", "%Coa", "Edge cut", "HEM", "mtMetis"]);
    let mut geos: Vec<(Group, f64, f64, f64)> = Vec::new();
    for ng in &corpus {
        let g = &ng.graph;
        let hec = run_one(ctx, &policy, g, MapMethod::Hec);
        let hem = run_one(ctx, &policy, g, MapMethod::Hem);
        let mtm = run_one(ctx, &policy, g, MapMethod::MtMetis);
        let r_hem = hem.cut as f64 / hec.cut.max(1) as f64;
        let r_mtm = mtm.cut as f64 / hec.cut.max(1) as f64;
        row(&[
            ng.name.to_string(),
            secs(hec.total_seconds()),
            format!("{:.0}", hec.coarsen_fraction() * 100.0),
            hec.cut.to_string(),
            ratio(r_hem),
            ratio(r_mtm),
        ]);
        geos.push((ng.group, hec.coarsen_fraction() * 100.0, r_hem, r_mtm));
    }
    for (group, label) in [(Group::Regular, "regular"), (Group::Skewed, "skewed")] {
        let sel: Vec<&(Group, f64, f64, f64)> = geos.iter().filter(|r| r.0 == group).collect();
        if sel.is_empty() {
            continue;
        }
        row(&[
            format!("GeoMean ({label})"),
            String::new(),
            format!("{:.0}", geo(&sel.iter().map(|r| r.1).collect::<Vec<_>>())),
            String::new(),
            ratio(geo(&sel.iter().map(|r| r.2).collect::<Vec<_>>())),
            ratio(geo(&sel.iter().map(|r| r.3).collect::<Vec<_>>())),
        ]);
    }
}

//! Table IV — coarsening-method comparison on the device-sim policy:
//! total coarsening time ratios relative to HEC, level counts per method,
//! and the average coarsening ratio for HEC and mt-Metis coarsening.

use crate::harness::{geo, header, median_time, ratio, row, Ctx};
use mlcg_coarsen::{coarsen, CoarsenOptions, MapMethod};
use mlcg_graph::suite::Group;

/// Print Table IV.
pub fn run(ctx: &Ctx) {
    let policy = ctx.device();
    let corpus = ctx.corpus();
    if ctx.trace_enabled() {
        // Two profiled HEC coarsens: the largest corpus graph (mapping
        // and sort kernels dominate; wide dispatches) and the densest one
        // (Box125 stencils drive coarse rows past the hub-shard
        // threshold, so construction's staged scatter + stitch kernels
        // appear in the dispatch records). The reports render as Chrome
        // traces with --trace-out (FILE and FILE-2.json).
        let largest = corpus.iter().max_by_key(|ng| ng.graph.n());
        let densest = corpus
            .iter()
            .max_by_key(|ng| ng.graph.adj().len() / ng.graph.n().max(1));
        let mut profiled: Vec<&mlcg_graph::suite::NamedGraph> = Vec::new();
        for ng in [largest, densest].into_iter().flatten() {
            if !profiled.iter().any(|p| p.name == ng.name) {
                profiled.push(ng);
            }
        }
        for ng in profiled {
            let trace = ctx.trace_collector();
            {
                let _p = mlcg_par::profile::install(&trace);
                let _h = coarsen(
                    &policy,
                    &ng.graph,
                    &CoarsenOptions {
                        method: MapMethod::Hec,
                        seed: ctx.seed,
                        trace: trace.clone(),
                        ..Default::default()
                    },
                );
            }
            ctx.emit_trace(&format!("table4/coarsen/{}", ng.name), &trace.report());
        }
    }
    println!("Table IV: coarsening methods on the device-sim policy (ratios vs HEC)");
    header(&[
        "Graph", "HEM", "mtMetis", "GOSH", "MIS2", "l HEC", "l HEM", "l mtM", "l GOSH", "l MIS2",
        "cr HEC", "cr mtM",
    ]);
    let methods = [
        MapMethod::Hem,
        MapMethod::MtMetis,
        MapMethod::Gosh,
        MapMethod::Mis2,
    ];
    let mut ratios: Vec<(Group, [f64; 4])> = Vec::new();
    let mut crs: Vec<(Group, f64, f64)> = Vec::new();

    for ng in &corpus {
        let g = &ng.graph;
        let (h_hec, t_hec) = median_time(ctx.runs, || {
            coarsen(
                &policy,
                g,
                &CoarsenOptions {
                    method: MapMethod::Hec,
                    seed: ctx.seed,
                    ..Default::default()
                },
            )
        });
        let mut cells = vec![ng.name.to_string()];
        let mut per_method = [0.0f64; 4];
        let mut hierarchies = Vec::new();
        for (i, &method) in methods.iter().enumerate() {
            let (h, t) = median_time(ctx.runs, || {
                coarsen(
                    &policy,
                    g,
                    &CoarsenOptions {
                        method,
                        seed: ctx.seed,
                        ..Default::default()
                    },
                )
            });
            per_method[i] = t / t_hec;
            hierarchies.push(h);
        }
        cells.extend(per_method.iter().map(|&r| ratio(r)));
        cells.push(h_hec.num_levels().to_string());
        cells.extend(hierarchies.iter().map(|h| h.num_levels().to_string()));
        let cr_hec = h_hec.avg_coarsening_ratio();
        let cr_mtm = hierarchies[1].avg_coarsening_ratio();
        cells.push(format!("{cr_hec:.2}"));
        cells.push(format!("{cr_mtm:.2}"));
        row(&cells);
        ratios.push((ng.group, per_method));
        crs.push((ng.group, cr_hec, cr_mtm));
    }

    for (group, label) in [(Group::Regular, "regular"), (Group::Skewed, "skewed")] {
        let sel: Vec<&(Group, [f64; 4])> = ratios.iter().filter(|r| r.0 == group).collect();
        if sel.is_empty() {
            continue;
        }
        let mut cells = vec![format!("GeoMean ({label})")];
        for i in 0..4 {
            cells.push(ratio(geo(&sel.iter().map(|r| r.1[i]).collect::<Vec<_>>())));
        }
        for _ in 0..5 {
            cells.push(String::new());
        }
        let crsel: Vec<&(Group, f64, f64)> = crs.iter().filter(|r| r.0 == group).collect();
        cells.push(format!(
            "{:.2}",
            geo(&crsel.iter().map(|r| r.1).collect::<Vec<_>>())
        ));
        cells.push(format!(
            "{:.2}",
            geo(&crsel.iter().map(|r| r.2).collect::<Vec<_>>())
        ));
        row(&cells);
    }
}

//! Ablation — the degree-based deduplication optimization (DESIGN.md §5).
//!
//! The paper reports that without this optimization, construction on
//! kron21 is 25.7× slower. We rerun HEC coarsening on the skewed group
//! with the optimization forced on and forced off and report the
//! construction-time ratio.

use crate::harness::{geo, header, median_time, ratio, row, Ctx};
use mlcg_coarsen::{coarsen, CoarsenOptions, ConstructMethod, ConstructOptions, MapMethod};
use mlcg_graph::suite::Group;

/// Print the ablation table.
pub fn run(ctx: &Ctx) {
    let policy = ctx.device();
    println!("Ablation: degree-based dedup optimization (construction time off/on)");
    header(&["Graph", "t_con ON (s)", "t_con OFF (s)", "off/on"]);
    let mut ratios = Vec::new();
    for ng in ctx.corpus().iter().filter(|ng| ng.group == Group::Skewed) {
        let g = &ng.graph;
        let time_with = |threshold: f64| {
            let opts = CoarsenOptions {
                method: MapMethod::Hec,
                construction: ConstructOptions {
                    method: ConstructMethod::Sort,
                    degree_dedup_skew_threshold: threshold,
                },
                seed: ctx.seed,
                ..Default::default()
            };
            let (h, _) = median_time(ctx.runs, || coarsen(&policy, g, &opts));
            h.stats.construct_seconds.iter().sum::<f64>()
        };
        let on = time_with(0.0); // always on
        let off = time_with(f64::INFINITY); // never
        let r = off / on;
        ratios.push(r);
        row(&[
            ng.name.to_string(),
            format!("{on:.3}"),
            format!("{off:.3}"),
            ratio(r),
        ]);
    }
    println!(
        "geomean off/on (skewed group): {:.2} (>1 means the optimization helps)",
        geo(&ratios)
    );
}

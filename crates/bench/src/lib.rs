//! # mlcg-bench — reproduction harness
//!
//! One regeneration routine per table and figure of the paper (see
//! DESIGN.md §2 for the experiment index and EXPERIMENTS.md for recorded
//! outputs). The `repro` binary dispatches to [`exp`]:
//!
//! ```text
//! cargo run --release -p mlcg-bench --bin repro -- <experiment> [options]
//!
//! experiments: table1 table2 table3 table4 table5 table6
//!              fig1 fig2 fig3-left fig3-mid fig3-right
//!              ablate-dedup bench-fm extended-methods trace all
//! options:     --scale <k>      corpus size (default 0; +1 doubles n)
//!              --runs <r>       timed repetitions, median reported (default 3)
//!              --seed <s>       RNG seed (default 42)
//!              --fast           lower power-iteration caps for quick smoke runs
//!              --quick          shrink benchmark suites for CI smoke runs
//!              --trace          emit pipeline traces (JSON-lines + span tree)
//!              --trace-out <f>  also write each traced run as Chrome
//!                               trace-event JSON (implies --trace)
//!              --baseline <f>   compare results against a committed
//!                               BENCH_*.json; exit 1 on regression
//!              --noise <x>      baseline noise threshold (default 0.25
//!                               = 25% slower counts as a regression)
//! ```
//!
//! Environment: `MLCG_TRACE=1` enables tracing without the flag;
//! `MLCG_TRACE_OUT=<f>` supplies a default Chrome-trace output path;
//! `MLCG_VALIDATE=1` additionally runs opt-in invariant audits between
//! pipeline phases and records them as trace events.

pub mod compare;
pub mod exp;
pub mod harness;

pub use harness::Ctx;

#![warn(missing_docs)]
//! # multilevel-coarsen
//!
//! A performance-portable multilevel graph coarsening, construction, and
//! partitioning library — a from-scratch Rust reproduction of
//! *Performance-Portable Graph Coarsening for Efficient Multilevel Graph
//! Analysis* (Gilbert, Acer, Boman, Madduri, Rajamanickam; IPDPS 2021).
//!
//! This umbrella crate re-exports the workspace:
//!
//! - [`par`] — execution policies and parallel primitives (the Kokkos
//!   substitute): thread pool, `parallel_for`/`reduce`/`scan`, radix and
//!   bitonic sorts, seeded RNG;
//! - [`graph`] — CSR graphs, builders, generators (the paper's 20-graph
//!   corpus as synthetic stand-ins), connectivity, Matrix Market / METIS /
//!   DOT I/O, metrics;
//! - [`sparse`] — SpMV, SpGEMM, Laplacians, Fiedler vectors (the Kokkos
//!   Kernels substitute);
//! - [`coarsen`] — the paper's contribution: HEC / HEC2 / HEC3 / HEM /
//!   mt-Metis two-hop / GOSH / GOSH+HEC / MIS(2) mappings, sort- /
//!   hash- / SpGEMM- / global-sort construction, the multilevel driver;
//! - [`partition`] — multilevel spectral and Fiduccia–Mattheyses
//!   bisection, plus Metis-like baselines.
//!
//! ## Quickstart
//!
//! ```
//! use multilevel_coarsen::prelude::*;
//!
//! // A small mesh-like graph (the corpus generators live in `graph`).
//! let g = multilevel_coarsen::graph::generators::grid2d(32, 32);
//!
//! // Coarsen with lock-free parallel HEC to the 50-vertex cutoff.
//! let policy = ExecPolicy::host();
//! let hierarchy = coarsen(&policy, &g, &CoarsenOptions::default());
//! assert!(hierarchy.coarsest().n() <= 50);
//!
//! // Multilevel bisection with FM refinement.
//! let result = fm_bisect(&policy, &g, &CoarsenOptions::default(), &FmConfig::default(), 42);
//! assert!(result.cut >= 32); // a 32x32 grid's optimal balanced cut
//! assert!(result.imbalance <= 1.05);
//! ```

pub use mlcg_coarsen as coarsen;
pub use mlcg_graph as graph;
pub use mlcg_par as par;
pub use mlcg_partition as partition;
pub use mlcg_sparse as sparse;

/// The most commonly used items in one import.
pub mod prelude {
    pub use mlcg_coarsen::{
        audit_hierarchy, coarsen, construct_coarse_graph, find_mapping, CoarsenOptions,
        ConstructMethod, ConstructOptions, Hierarchy, MapMethod, Mapping,
    };
    pub use mlcg_graph::{Csr, DegreeStats};
    pub use mlcg_par::{Backend, ExecPolicy, TraceCollector, TraceConfig, TraceReport};
    pub use mlcg_partition::{
        fm_bisect, metis_like, mtmetis_like, spectral_bisect, FmConfig, PartitionResult,
        SpectralConfig,
    };
}

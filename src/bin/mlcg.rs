//! `mlcg` — command-line driver for the multilevel-coarsen library.
//!
//! ```text
//! mlcg stats    <graph>                         degree statistics
//! mlcg coarsen  <graph> [opts]                  multilevel coarsening report
//! mlcg bisect   <graph> [opts]                  2-way partition
//! mlcg kway     <graph> -k <k> [opts]           k-way partition
//! mlcg generate <name> --out <file> [opts]      corpus graph to file
//! mlcg convert  <in> <out>                      format conversion
//!
//! graphs: .mtx (MatrixMarket), .graph/.metis (METIS), else edge list
//! opts:   --method hec|hec2|hec3|hem|mtmetis|gosh|goshec|mis2|suitor
//!         --construction sort|hash|spgemm|global-sort|hybrid
//!         --refine fm|spectral|parallel      (bisect only)
//!         --policy serial|host|device        (default host)
//!         --cutoff <n>  --seed <s>  -k <k>
//!         --out <file>                       write partition labels / graph
//! ```

use multilevel_coarsen::coarsen::{
    coarsen, CoarsenOptions, ConstructMethod, ConstructOptions, MapMethod,
};
use multilevel_coarsen::graph::{cc, io, metrics::DegreeStats, Csr};
use multilevel_coarsen::par::ExecPolicy;
use multilevel_coarsen::partition::{
    fm_bisect, kway_partition, parfm_bisect, spectral_bisect, FmConfig, ParRefConfig,
    SpectralConfig,
};
use std::path::{Path, PathBuf};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: mlcg <stats|coarsen|bisect|kway|generate|convert> <args> \
         (see `mlcg help` or the binary's doc comment)"
    );
    exit(2);
}

#[derive(Default)]
struct Opts {
    method: Option<MapMethod>,
    construction: Option<ConstructMethod>,
    refine: Option<String>,
    policy: Option<String>,
    cutoff: Option<usize>,
    seed: u64,
    k: usize,
    scale: u32,
    out: Option<PathBuf>,
    positional: Vec<String>,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        seed: 42,
        k: 2,
        ..Default::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                exit(2);
            })
        };
        match a.as_str() {
            "--method" => {
                let v = next("--method");
                o.method = Some(MapMethod::parse(v).unwrap_or_else(|| {
                    eprintln!("unknown method {v}");
                    exit(2);
                }));
            }
            "--construction" => {
                let v = next("--construction");
                o.construction = Some(ConstructMethod::parse(v).unwrap_or_else(|| {
                    eprintln!("unknown construction {v}");
                    exit(2);
                }));
            }
            "--refine" => o.refine = Some(next("--refine").clone()),
            "--policy" => o.policy = Some(next("--policy").clone()),
            "--cutoff" => o.cutoff = next("--cutoff").parse().ok(),
            "--seed" => o.seed = next("--seed").parse().unwrap_or(42),
            "-k" => o.k = next("-k").parse().unwrap_or(2),
            "--scale" => o.scale = next("--scale").parse().unwrap_or(0),
            "--out" => o.out = Some(PathBuf::from(next("--out"))),
            other if !other.starts_with('-') => o.positional.push(other.to_string()),
            other => {
                eprintln!("unknown option {other}");
                exit(2);
            }
        }
    }
    o
}

fn policy_of(o: &Opts) -> ExecPolicy {
    match o.policy.as_deref() {
        Some("serial") => ExecPolicy::serial(),
        Some("device") => ExecPolicy::device_sim(),
        None | Some("host") => ExecPolicy::host(),
        Some(other) => {
            eprintln!("unknown policy {other}");
            exit(2);
        }
    }
}

fn coarsen_opts(o: &Opts) -> CoarsenOptions {
    let mut c = CoarsenOptions {
        seed: o.seed,
        ..Default::default()
    };
    if let Some(m) = o.method {
        c.method = m;
    }
    if let Some(cm) = o.construction {
        c.construction = ConstructOptions::with_method(cm);
    }
    if let Some(cut) = o.cutoff {
        c.cutoff = cut;
    }
    c
}

fn load(path: &str) -> Csr {
    let g = io::read_auto(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    let (lcc, _) = cc::largest_component(&g);
    if lcc.n() < g.n() {
        eprintln!(
            "note: extracted largest connected component ({} of {} vertices)",
            lcc.n(),
            g.n()
        );
    }
    lcc
}

fn write_labels(path: &Path, labels: &[u32]) {
    let body: String = labels.iter().map(|l| format!("{l}\n")).collect();
    std::fs::write(path, body).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", path.display());
        exit(1);
    });
    println!("wrote labels to {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let o = parse_opts(&args[1..]);
    match cmd.as_str() {
        "stats" => {
            let [path] = &o.positional[..] else { usage() };
            let g = load(path);
            let s = DegreeStats::of(&g);
            println!("n = {}", s.n);
            println!("m = {}", s.m);
            println!("max degree = {}", s.max_degree);
            println!("avg degree = {:.2}", s.avg_degree);
            println!(
                "skew Δ/avg = {:.2} ({})",
                s.skew,
                if s.is_skewed() { "skewed" } else { "regular" }
            );
            println!("total edge weight = {}", g.total_edge_weight());
        }
        "coarsen" => {
            let [path] = &o.positional[..] else { usage() };
            let g = load(path);
            let policy = policy_of(&o);
            let h = coarsen(&policy, &g, &coarsen_opts(&o));
            println!("levels = {}", h.num_levels());
            println!(
                "coarsest n = {}, m = {}",
                h.coarsest().n(),
                h.coarsest().m()
            );
            println!("avg coarsening ratio = {:.2}", h.avg_coarsening_ratio());
            println!(
                "time = {:.1} ms ({:.0}% construction)",
                h.stats.total_seconds() * 1e3,
                h.stats.construction_fraction() * 100.0
            );
            for (i, level) in h.levels.iter().enumerate() {
                println!(
                    "  level {:>2}: n = {:>9}, m = {:>10}",
                    i + 1,
                    level.graph.n(),
                    level.graph.m()
                );
            }
            if let Some(out) = &o.out {
                io::write_metis(h.coarsest(), out).expect("write coarsest graph");
                println!("wrote coarsest graph to {}", out.display());
            }
        }
        "bisect" => {
            let [path] = &o.positional[..] else { usage() };
            let g = load(path);
            let policy = policy_of(&o);
            let copts = coarsen_opts(&o);
            let r = match o.refine.as_deref().unwrap_or("fm") {
                "fm" => fm_bisect(&policy, &g, &copts, &FmConfig::default(), o.seed),
                "spectral" => {
                    spectral_bisect(&policy, &g, &copts, &SpectralConfig::default(), o.seed)
                }
                "parallel" => parfm_bisect(&policy, &g, &copts, &ParRefConfig::default(), o.seed),
                other => {
                    eprintln!("unknown refinement {other}");
                    exit(2);
                }
            };
            println!("cut = {}", r.cut);
            println!("imbalance = {:.4}", r.imbalance);
            println!(
                "time = {:.1} ms (coarsen {:.1} ms, refine {:.1} ms, {} levels)",
                r.total_seconds() * 1e3,
                r.coarsen_seconds * 1e3,
                r.refine_seconds * 1e3,
                r.levels
            );
            if let Some(out) = &o.out {
                write_labels(out, &r.part);
            }
        }
        "kway" => {
            let [path] = &o.positional[..] else { usage() };
            let g = load(path);
            let policy = policy_of(&o);
            let r = kway_partition(
                &policy,
                &g,
                o.k,
                &coarsen_opts(&o),
                &FmConfig::default(),
                o.seed,
            );
            println!("k = {}", o.k);
            println!("cut = {}", r.cut);
            println!("imbalance = {:.4}", r.imbalance);
            println!(
                "time = {:.1} ms (k-way refine {:.1} ms)",
                r.seconds * 1e3,
                r.refine_seconds * 1e3
            );
            if let Some(out) = &o.out {
                write_labels(out, &r.part);
            }
        }
        "generate" => {
            let [name] = &o.positional[..] else { usage() };
            let Some(out) = &o.out else {
                eprintln!("generate requires --out <file>");
                exit(2);
            };
            let g = multilevel_coarsen::graph::suite::by_name(name, o.scale, o.seed)
                .unwrap_or_else(|| {
                    eprintln!(
                        "unknown corpus graph '{name}'; known: {} / {}",
                        multilevel_coarsen::graph::suite::REGULAR.join(" "),
                        multilevel_coarsen::graph::suite::SKEWED.join(" ")
                    );
                    exit(2);
                });
            write_graph(&g, out);
            println!("generated {name}: {}", g.summary());
        }
        "convert" => {
            let [input, output] = &o.positional[..] else {
                usage()
            };
            let g = io::read_auto(Path::new(input)).unwrap_or_else(|e| {
                eprintln!("cannot read {input}: {e}");
                exit(1);
            });
            write_graph(&g, Path::new(output));
            println!("converted {input} -> {output} ({})", g.summary());
        }
        "help" | "--help" | "-h" => {
            println!("see the doc comment at the top of src/bin/mlcg.rs or README.md");
        }
        _ => usage(),
    }
}

fn write_graph(g: &Csr, out: &Path) {
    let res = match out.extension().and_then(|e| e.to_str()) {
        Some("mtx") => io::write_matrix_market(g, out),
        Some("graph") | Some("metis") => io::write_metis(g, out),
        _ => io::write_edge_list(g, out),
    };
    res.unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", out.display());
        exit(1);
    });
}
